#include "runner/grids.hh"

#include <stdexcept>

#include "core/experiment.hh"
#include "workload/profiles.hh"

namespace allarm::runner {

const std::vector<std::string>& builtin_grid_names() {
  static const std::vector<std::string> names = {"fig3", "fig3h", "policy",
                                                 "region", "quick"};
  return names;
}

SweepSpec make_builtin_grid(const std::string& name, const GridKnobs& knobs) {
  if (knobs.seeds == 0) {
    throw std::invalid_argument("grid '" + name +
                                "': seeds must be positive");
  }
  SweepSpec spec;
  spec.name = name;
  spec.workloads = workload::benchmark_names();
  spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm};
  spec.replicates = knobs.seeds;
  spec.base_seed = knobs.base_seed;

  SystemConfig config;
  if (name == "fig3") {
    spec.accesses_per_thread = core::bench_accesses(30000);
    spec.configs = {{"table1", config}};
  } else if (name == "fig3h") {
    spec.accesses_per_thread = core::bench_accesses(20000);
    for (const std::uint32_t kb : {512u, 256u, 128u}) {
      SystemConfig c = config;
      c.probe_filter_coverage_bytes = kb * 1024;
      spec.configs.push_back({std::to_string(kb) + "kB", c});
    }
  } else if (name == "policy") {
    spec.accesses_per_thread = core::bench_accesses(20000);
    spec.configs = {{"first-touch", config, numa::AllocPolicy::kFirstTouch},
                    {"interleave", config, numa::AllocPolicy::kInterleave}};
  } else if (name == "region") {
    // Region-granularity ablation: scheme x region size x workload.  The
    // 64 B point degenerates to per-block tracking, so its region rows
    // must match the baseline rows cell for cell (the correctness oracle;
    // see docs/DIRECTORY.md).
    spec.accesses_per_thread = core::bench_accesses(20000);
    spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm,
                  DirectoryMode::kRegion};
    for (const std::uint32_t bytes : {4096u, 1024u, 256u, 64u}) {
      SystemConfig c = config;
      c.region_size_bytes = bytes;
      spec.configs.push_back({"r" + std::to_string(bytes), c});
    }
  } else if (name == "quick") {
    spec.accesses_per_thread = core::bench_accesses(2000);
    spec.workloads = {"barnes", "ocean-cont"};
    spec.configs = {{"table1", config}};
  } else {
    throw std::invalid_argument("unknown grid '" + name + "'");
  }
  if (knobs.accesses > 0) spec.accesses_per_thread = knobs.accesses;
  return spec;
}

}  // namespace allarm::runner
