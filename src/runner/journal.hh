// The on-disk sweep journal: crash-safe, append-only job completion log.
//
// A journaled sweep survives kill -9 at any byte boundary.  Two files:
//
//   <path>        64-byte header + append-only 40-byte records, one per
//                 finished job.  Every record carries a CRC32C of itself
//                 and of its payload; the header stamps the sweep's spec
//                 hash, full-grid job count, base seed and shard, so a
//                 journal can never silently resume the wrong sweep.
//   <path>.data   concatenated payload blobs: one serialized RunResult
//                 (or, for quarantined jobs, FailureRecord) per record,
//                 addressed by (offset, size) from the record.
//
// A record's flags field distinguishes results from quarantined failures
// (bit 0); journals written before quarantine existed carry zero flags, so
// old journals read unchanged.
//
// Records are fixed-size so recovery is arithmetic: a torn tail is
// `size % 40` stray bytes plus any trailing records whose CRC fails —
// both are truncated away and only those jobs re-run.  A record whose
// payload fails its CRC (data-file corruption) is likewise treated as
// not-done.  Appends batch their fsyncs (payload file first, then the
// journal) so a record never outlives its payload across a crash.
//
// Layouts are fixed little-endian; docs/SWEEPS.md documents the format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fileio.hh"
#include "core/experiment.hh"

namespace allarm::runner {

/// Identity stamped into a journal header.  Resume and merge refuse any
/// journal whose meta does not match the spec in hand.
struct JournalMeta {
  std::uint64_t spec_hash = 0;
  std::uint64_t job_count = 0;  ///< Full-grid job count (all shards).
  std::uint64_t base_seed = 0;
  std::uint32_t shard_index = 1;
  std::uint32_t shard_count = 1;
};

/// One valid journal record, as loaded.
struct JournalEntry {
  std::uint64_t job_index = 0;  ///< Global grid-order job index.
  std::uint64_t seed = 0;       ///< The seed the job ran with.
  std::uint64_t payload_offset = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
  bool payload_ok = false;  ///< Payload CRC verified at load time.
  /// Quarantine record: the payload is a serialized FailureRecord, not a
  /// RunResult.  Resume treats failed jobs as not-done (they re-run; a
  /// later success supersedes via last-record-wins); merge folds an
  /// unsuperseded failure into the report's `failed` section.
  bool failed = false;
};

/// What a quarantined job's journal payload carries: how it failed, so a
/// degraded report can say which cells are missing and why.
struct FailureRecord {
  std::uint32_t attempts = 0;  ///< Execution attempts, including retries.
  std::string error;           ///< what() of the last attempt's exception.
};

/// Result of scanning a journal file pair.
struct JournalIndex {
  JournalMeta meta;
  /// Valid records in append order.  A job may appear more than once
  /// (re-run after payload corruption); the LAST record wins.
  std::vector<JournalEntry> entries;
  std::uint64_t valid_journal_bytes = 0;  ///< Header + intact records.
  std::uint64_t valid_data_bytes = 0;     ///< Extent of referenced payloads.
  std::uint64_t dropped_records = 0;      ///< Torn/corrupt tail records.
};

/// Path of the payload sidecar belonging to journal `path`.
std::string journal_data_path(const std::string& path);

/// Canonical binary serialization of one RunResult (the journal payload).
/// `cell_hash` is the identity hash of the job's grid cell
/// (runner::cell_hash in sweep.hh); it rides in the payload's extensible
/// trailing section so per-cell incremental re-sweeps can tell which
/// journaled cells a changed spec invalidates.  0 = not recorded (the
/// value journals written before the field existed deserialize to).
std::string serialize_run_result(const core::RunResult& result,
                                 std::uint64_t cell_hash = 0);

/// Inverse of serialize_run_result; throws std::runtime_error on malformed
/// input (truncated or trailing bytes).  When `cell_hash` is non-null it
/// receives the payload's recorded cell hash (0 when the payload predates
/// the field).
core::RunResult deserialize_run_result(const void* data, std::size_t size,
                                       std::uint64_t* cell_hash = nullptr);

/// Canonical binary serialization of one FailureRecord (the payload of a
/// quarantine record — see JournalEntry::failed).
std::string serialize_failure(const FailureRecord& failure);

/// Inverse of serialize_failure; throws std::runtime_error on malformed
/// input.
FailureRecord deserialize_failure(const void* data, std::size_t size);

/// A journal open for reading and/or appending.
class Journal {
 public:
  static constexpr std::uint64_t kMagic = 0x314C4E4A4D524C41ull;  // "ALRMJNL1"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kHeaderSize = 64;
  static constexpr std::size_t kRecordSize = 40;
  /// Appends between durability points; sync() also runs on close.
  static constexpr std::uint32_t kSyncBatch = 16;

  /// Creates (or truncates) a fresh journal stamped with `meta`.
  static Journal create(const std::string& path, const JournalMeta& meta);

  /// Opens an existing journal for resume: validates the header against
  /// `expected` (throws std::runtime_error on any mismatch — spec hash,
  /// job count, base seed or shard), scans the records, truncates any torn
  /// tail from both files, and positions for append.
  static Journal open_resume(const std::string& path,
                             const JournalMeta& expected);

  /// Incremental-resume open: like open_resume, but a spec-hash or
  /// base-seed mismatch REBINDS the journal instead of refusing — the
  /// header is durably rewritten with `expected` so later strict opens and
  /// merges see the new identity.  Grid shape and shard must still match
  /// (a journal indexed by a different grid cannot be reinterpreted).
  /// Callers decide per record what is still valid (per-cell hashes);
  /// stale records are superseded by re-run appends, last-record-wins.
  static Journal open_rebind(const std::string& path,
                             const JournalMeta& expected);

  /// Opens read-only (merge path): header is validated for magic/version
  /// and CRC only; callers check meta themselves.
  static Journal open_read(const std::string& path);

  /// Scans without opening for write.  Throws when the file is missing or
  /// its header is invalid; a damaged record tail is reported, not fatal.
  static JournalIndex load_index(const std::string& path);

  const JournalIndex& index() const { return index_; }
  const JournalMeta& meta() const { return index_.meta; }

  /// Appends one finished job.  Durable after the next sync barrier (every
  /// kSyncBatch appends, or close()).  `cell_hash` stamps the payload with
  /// the job's cell identity (see serialize_run_result; 0 = unstamped).
  void append(std::uint64_t job_index, std::uint64_t seed,
              const core::RunResult& result, std::uint64_t cell_hash = 0);

  /// Appends one quarantined (permanently failed) job.  Same durability as
  /// append(); the record carries the failed flag and a FailureRecord
  /// payload.  A later append() for the same job supersedes it
  /// (last-record-wins), which is exactly what a successful resume does.
  void append_failed(std::uint64_t job_index, std::uint64_t seed,
                     const FailureRecord& failure);

  /// Reads and verifies one payload; throws std::runtime_error when the
  /// stored bytes fail their CRC or do not deserialize, std::logic_error
  /// when `entry` is a quarantine record (use read_failure).  A non-null
  /// `cell_hash` receives the payload's recorded cell-identity hash
  /// (0 when the record predates cell stamping).
  core::RunResult read_payload(const JournalEntry& entry,
                               std::uint64_t* cell_hash = nullptr) const;

  /// Reads and verifies one quarantine payload; throws std::logic_error
  /// when `entry` is a result record.
  FailureRecord read_failure(const JournalEntry& entry) const;

  /// Forces all appended records to stable storage (payloads first).
  void sync();

  /// sync() + close both files.  Idempotent; the destructor also closes
  /// (without throwing) but an explicit close surfaces errors.
  void close();

  std::uint64_t record_count() const { return index_.entries.size(); }

 private:
  Journal() = default;

  /// Shared append path: writes `payload` to the data file, then the
  /// record (with `flags`) to the journal.
  void append_record(std::uint64_t job_index, std::uint64_t seed,
                     const std::string& payload, std::uint32_t flags);
  std::string verified_payload(const JournalEntry& entry) const;

  File journal_;
  File data_;
  JournalIndex index_;
  std::uint64_t journal_end_ = 0;  ///< Append offset in the journal file.
  std::uint64_t data_end_ = 0;     ///< Append offset in the data file.
  std::uint32_t unsynced_appends_ = 0;
  bool writable_ = false;
};

}  // namespace allarm::runner
