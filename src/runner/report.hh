// Serialization of sweep results.
//
// Both formats are canonical: fixed field order, map-sorted statistic
// names, round-trip number formatting, and no execution metadata (worker
// count, wall clock, steal counts).  Two sweeps of the same spec therefore
// produce byte-identical reports regardless of --jobs — the property the
// determinism tests pin down.
#pragma once

#include <string>

#include "runner/sweep.hh"

namespace allarm::runner {

/// Renders `result` as a JSON document (trailing newline included).
std::string to_json(const SweepResult& result);

/// Renders `result` as long-format CSV: one row per (cell, metric), with
/// ROI runtime reported as the metric named "runtime".
std::string to_csv(const SweepResult& result);

/// Writes `content` to `path`; throws std::runtime_error on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace allarm::runner
