// Serialization of sweep results.
//
// Both formats are canonical: fixed field order, map-sorted statistic
// names, round-trip number formatting, and no execution metadata (worker
// count, wall clock, steal counts).  Two sweeps of the same spec therefore
// produce byte-identical reports regardless of --jobs — the property the
// determinism tests pin down.
//
// The writers are streaming ResultSinks: each cell serializes as it
// arrives and is dropped, so report size never bounds sweep size.  Peak
// memory is one cell, not one grid.  I/O failures surface as
// std::runtime_error (from end() at the latest) — never as a silently
// truncated report.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "runner/sink.hh"
#include "runner/sweep.hh"

namespace allarm::runner {

/// Streams the canonical JSON document to `out`, one cell at a time.
class JsonStreamSink : public ResultSink {
 public:
  /// `label` names the destination in error messages (a path, "stdout").
  explicit JsonStreamSink(std::ostream& out, std::string label = "report");

  /// Opt-in execution-timing section: each cell additionally carries a
  /// "wall_ns" summary (host wall-clock nanoseconds per replicate, from
  /// the journal / run_request measurement).  Off by default because
  /// wall clock varies run to run while the canonical report must be
  /// byte-identical for one spec; enable it (sweep --timing) when feeding
  /// a shard-sizing scheduler with measured cell costs.
  void set_include_timing(bool include) { include_timing_ = include; }

  /// Opt-in latency-profile section (sweep --profile): each cell with
  /// merged histograms (CellResult::profile) additionally carries a
  /// "hist" object of per-metric {p50, p95, p99, max, count} quantiles.
  /// Off by default for the same reason as timing: the canonical report
  /// must not change shape unless explicitly asked.
  void set_include_profile(bool include) { include_profile_ = include; }

  void begin(const SweepMeta& meta) override;
  void cell(CellResult&& cell) override;
  void end() override;

 private:
  void check() const;  ///< Throws std::runtime_error when `out_` went bad.

  std::ostream& out_;
  std::string label_;
  bool any_cell_ = false;
  bool include_timing_ = false;
  bool include_profile_ = false;
};

/// Streams the canonical long-format CSV to `out`: one row per
/// (cell, metric), with ROI runtime reported as the metric "runtime".
class CsvStreamSink : public ResultSink {
 public:
  explicit CsvStreamSink(std::ostream& out, std::string label = "report");

  void begin(const SweepMeta& meta) override;
  void cell(CellResult&& cell) override;
  void end() override;

 private:
  void check() const;

  std::ostream& out_;
  std::string label_;
  std::string sweep_name_;
};

/// Renders `result` as a JSON document (trailing newline included).
/// Convenience wrapper over JsonStreamSink for in-memory results.
std::string to_json(const SweepResult& result);

/// Renders `result` as long-format CSV.  Wrapper over CsvStreamSink.
std::string to_csv(const SweepResult& result);

/// Writes `content` to `path` and fsyncs it; throws std::runtime_error on
/// any I/O failure.
void write_file(const std::string& path, const std::string& content);

/// The report file pipeline shared by the sweep CLI and the sweep service:
/// streaming JSON to a file (or stdout) plus an optional CSV, fanned out
/// through one TeeSink.  File reports stream into `<path>.tmp` and rename
/// into place only in commit(), so a failed, killed, or drained run never
/// destroys a pre-existing good report — and never publishes a torn one.
class ReportFiles {
 public:
  /// Empty `json_path` streams JSON to stdout (the CLI default); empty
  /// `csv_path` means no CSV report.  Throws std::runtime_error when a
  /// temp file cannot be opened.
  ReportFiles(const std::string& json_path, const std::string& csv_path,
              bool include_timing = false, bool include_profile = false);
  /// Discards anything not committed (best effort, never throws).
  ~ReportFiles();

  ReportFiles(const ReportFiles&) = delete;
  ReportFiles& operator=(const ReportFiles&) = delete;

  /// The sink to stream the sweep into.
  ResultSink& sink() { return tee_; }

  /// Publishes the temp files: close, fsync, rename into place.  Call only
  /// after a successful end-of-stream; throws std::runtime_error on I/O
  /// failure (the targets then keep their previous contents).
  void commit();

  /// Abandons the temp files (close + unlink).  The drain path: a drained
  /// run's report is torn mid-stream by design — the journal carries the
  /// work, and the resume rewrites the report from scratch.
  void discard();

 private:
  std::string json_path_;
  std::string csv_path_;
  std::ofstream out_file_;
  std::ofstream csv_file_;
  std::unique_ptr<JsonStreamSink> json_;
  std::unique_ptr<CsvStreamSink> csv_;
  TeeSink tee_{{}};
  bool done_ = false;
};

}  // namespace allarm::runner
