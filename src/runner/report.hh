// Serialization of sweep results.
//
// Both formats are canonical: fixed field order, map-sorted statistic
// names, round-trip number formatting, and no execution metadata (worker
// count, wall clock, steal counts).  Two sweeps of the same spec therefore
// produce byte-identical reports regardless of --jobs — the property the
// determinism tests pin down.
//
// The writers are streaming ResultSinks: each cell serializes as it
// arrives and is dropped, so report size never bounds sweep size.  Peak
// memory is one cell, not one grid.  I/O failures surface as
// std::runtime_error (from end() at the latest) — never as a silently
// truncated report.
#pragma once

#include <ostream>
#include <string>

#include "runner/sink.hh"
#include "runner/sweep.hh"

namespace allarm::runner {

/// Streams the canonical JSON document to `out`, one cell at a time.
class JsonStreamSink : public ResultSink {
 public:
  /// `label` names the destination in error messages (a path, "stdout").
  explicit JsonStreamSink(std::ostream& out, std::string label = "report");

  /// Opt-in execution-timing section: each cell additionally carries a
  /// "wall_ns" summary (host wall-clock nanoseconds per replicate, from
  /// the journal / run_request measurement).  Off by default because
  /// wall clock varies run to run while the canonical report must be
  /// byte-identical for one spec; enable it (sweep --timing) when feeding
  /// a shard-sizing scheduler with measured cell costs.
  void set_include_timing(bool include) { include_timing_ = include; }

  void begin(const SweepMeta& meta) override;
  void cell(CellResult&& cell) override;
  void end() override;

 private:
  void check() const;  ///< Throws std::runtime_error when `out_` went bad.

  std::ostream& out_;
  std::string label_;
  bool any_cell_ = false;
  bool include_timing_ = false;
};

/// Streams the canonical long-format CSV to `out`: one row per
/// (cell, metric), with ROI runtime reported as the metric "runtime".
class CsvStreamSink : public ResultSink {
 public:
  explicit CsvStreamSink(std::ostream& out, std::string label = "report");

  void begin(const SweepMeta& meta) override;
  void cell(CellResult&& cell) override;
  void end() override;

 private:
  void check() const;

  std::ostream& out_;
  std::string label_;
  std::string sweep_name_;
};

/// Renders `result` as a JSON document (trailing newline included).
/// Convenience wrapper over JsonStreamSink for in-memory results.
std::string to_json(const SweepResult& result);

/// Renders `result` as long-format CSV.  Wrapper over CsvStreamSink.
std::string to_csv(const SweepResult& result);

/// Writes `content` to `path` and fsyncs it; throws std::runtime_error on
/// any I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace allarm::runner
