// One schedulable unit of a sweep: grid coordinates plus a fully
// materialized run request.
//
// Jobs are self-contained by construction — the request carries its own
// SystemConfig, workload spec and seed — so any worker thread can execute
// any job at any time and the sweep result is independent of scheduling.
#pragma once

#include <cstdint>

#include "common/rng.hh"
#include "core/experiment.hh"

namespace allarm::runner {

/// Position of one job inside a SweepSpec grid.  (workload, config, mode)
/// names the cell; `replicate` the repetition within the cell.
struct JobCoord {
  std::uint32_t workload = 0;
  std::uint32_t config = 0;
  std::uint32_t mode = 0;
  std::uint32_t replicate = 0;
};

/// Derives the seed of one job from the sweep's base seed and grid
/// coordinates.  Two properties are load-bearing:
///
///  - Purely positional: the seed depends only on coordinates, never on
///    submission or completion order, so a sweep is bit-reproducible at any
///    worker count.
///  - Config- and mode-blind: cells that the figures compare against each
///    other (baseline vs ALLARM, shrinking probe filters) replay identical
///    access streams, matching the paper's same-workload methodology —
///    only the machine under test changes.
inline std::uint64_t job_seed(std::uint64_t base_seed, std::uint32_t workload,
                              std::uint32_t replicate) {
  std::uint64_t s = SplitMix64(base_seed).next();
  s ^= 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(workload) + 1);
  s = SplitMix64(s).next();
  s ^= 0xbf58476d1ce4e5b9ull * (static_cast<std::uint64_t>(replicate) + 1);
  s = SplitMix64(s).next();
  return s != 0 ? s : 1;  // A zero seed would collapse the xoshiro state.
}

/// A materialized job: where it sits in the grid and what to run.
struct Job {
  JobCoord coord;
  core::RunRequest request;
};

}  // namespace allarm::runner
