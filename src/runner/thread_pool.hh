// A small work-stealing thread pool for experiment-level parallelism.
//
// Every simulation in a sweep is independent (one fresh System per job), so
// the pool only has to keep cores busy: each worker owns a deque, submit()
// deals tasks round-robin, owners pop from the front of their own deque and
// idle workers steal from the back of someone else's.  Tasks are coarse
// (whole simulations, milliseconds to minutes), so queue operations are
// guarded by one mutex rather than lock-free deques — contention is
// unmeasurable at this granularity and the simple design is easy to audit.
//
// Determinism note: the pool makes NO ordering guarantees.  Reproducibility
// of sweep output comes from jobs deriving their seeds from grid coordinates
// and writing results to preassigned slots (see runner/sweep.cc).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace allarm::runner {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Starts `workers` threads (at least 1).
  explicit ThreadPool(std::uint32_t workers);

  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks should signal failure through their result
  /// slot (the sweep runner's completion records do); as a safety net, a
  /// task that throws anyway is caught — the FIRST such exception is
  /// captured and rethrown from the next wait_idle(), instead of the
  /// std::terminate an escaped worker exception would cause.  Later
  /// exceptions are dropped; the pool keeps draining tasks either way.
  void submit(Task task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task leaked (clearing it — the pool is reusable
  /// afterwards).
  void wait_idle();

  std::uint32_t worker_count() const {
    return static_cast<std::uint32_t>(queues_.size());
  }

  /// Number of tasks executed by a worker other than the one they were
  /// dealt to.  Diagnostic only (tests, --verbose sweeps).
  std::uint64_t steal_count() const;

  /// Workers currently executing a task.  A sampled utilization gauge for
  /// the service heartbeat — instantaneous, already stale when returned.
  std::uint32_t busy_count() const;

 private:
  void worker_loop(std::uint32_t self);
  /// wait_idle() without the rethrow, for the destructor (which must not
  /// throw) and as the shared blocking core.
  void wait_idle_no_rethrow();

  /// Pops the next task for worker `self`: front of its own deque, else the
  /// back of the first non-empty peer deque (a steal).  Returns false when
  /// no work is available.  Caller holds `mutex_`.
  bool try_pop(std::uint32_t self, Task& task);

  std::vector<std::deque<Task>> queues_;  // One per worker.
  std::vector<std::thread> threads_;

  mutable std::mutex mutex_;        // Guards queues_ and the counters below.
  std::condition_variable work_cv_;  // Signals workers: work or stop.
  std::condition_variable idle_cv_;  // Signals wait_idle(): all done.
  std::uint64_t unfinished_ = 0;     // Tasks submitted but not yet completed.
  std::uint64_t steals_ = 0;
  std::uint32_t busy_ = 0;           // Workers currently inside task().
  std::exception_ptr first_error_;   // First exception leaked by a task.
  std::uint32_t next_queue_ = 0;     // Round-robin dealing cursor.
  bool stopping_ = false;
};

}  // namespace allarm::runner
