// Declarative experiment sweeps and the parallel runner that executes them.
//
// The paper's figures are grids — (workload x configuration x directory
// mode), usually with the same workload stream replayed on every machine
// variant.  A SweepSpec describes such a grid once; SweepRunner shards the
// fully-independent jobs across host cores and folds the results into a
// SweepResult whose content is bit-identical at any --jobs setting (seeds
// come from grid coordinates, result slots are preassigned, aggregation
// runs in grid order).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "runner/job.hh"
#include "workload/spec.hh"

namespace allarm::runner {

/// One point on the configuration axis: a labelled machine variant.
struct ConfigPoint {
  std::string label;
  SystemConfig config;
  numa::AllocPolicy policy = numa::AllocPolicy::kFirstTouch;
};

/// Builds the workload for one (workload name, machine) pair.
using WorkloadFactory = std::function<workload::WorkloadSpec(
    const std::string& name, const SystemConfig& config,
    std::uint64_t accesses_per_thread)>;

/// A sweep grid: workloads x configs x modes, each cell run `replicates`
/// times.  Axis order is also result order (workload-major, then config,
/// then mode, then replicate).
struct SweepSpec {
  std::string name;
  std::vector<std::string> workloads;  ///< Benchmark profile names.
  std::vector<ConfigPoint> configs;
  std::vector<DirectoryMode> modes;
  std::uint32_t replicates = 1;
  std::uint64_t base_seed = 42;
  std::uint64_t accesses_per_thread = 20000;
  /// Defaults to workload::make_benchmark; tests substitute tiny profiles.
  WorkloadFactory make_workload;

  std::uint64_t job_count() const {
    return static_cast<std::uint64_t>(workloads.size()) * configs.size() *
           modes.size() * replicates;
  }
};

/// Aggregated results of one grid cell.
struct CellResult {
  std::string workload;
  std::string config_label;
  DirectoryMode mode = DirectoryMode::kBaseline;

  std::vector<std::uint64_t> seeds;     ///< Per-replicate seeds, in order.
  std::vector<core::RunResult> runs;    ///< Per-replicate raw results.
  Summary runtime;                      ///< ROI runtime across replicates.
  std::map<std::string, Summary> stats; ///< Per-statistic aggregates.
};

/// All cells of a sweep, in grid order.
struct SweepResult {
  std::string name;
  std::uint64_t base_seed = 0;
  std::uint32_t replicates = 1;
  std::uint64_t accesses_per_thread = 0;
  std::vector<CellResult> cells;

  // Execution metadata.  Deliberately excluded from the JSON/CSV reports:
  // they vary run to run while the science above must not.
  std::uint32_t jobs_used = 1;
  std::uint64_t tasks_stolen = 0;
  double wall_seconds = 0.0;

  /// Looks up a cell; returns nullptr when absent.
  const CellResult* find(const std::string& workload,
                         const std::string& config_label,
                         DirectoryMode mode) const;

  /// Baseline/ALLARM pair of a (workload, config) cell pair, built from
  /// replicate `replicate` of each.  Throws std::out_of_range when either
  /// cell or replicate is missing.
  core::PairResult pair(const std::string& workload,
                        const std::string& config_label,
                        std::uint32_t replicate = 0) const;
};

/// Executes sweeps on a work-stealing pool.
class SweepRunner {
 public:
  /// `jobs` = worker threads; 0 means core::bench_jobs() (ALLARM_JOBS or
  /// hardware concurrency).
  explicit SweepRunner(std::uint32_t jobs = 0);

  /// Runs every job of `spec` and aggregates.  Output content depends only
  /// on the spec, never on the worker count or scheduling.
  SweepResult run(const SweepSpec& spec) const;

  std::uint32_t jobs() const { return jobs_; }

 private:
  std::uint32_t jobs_;
};

/// Materializes the job list of `spec` in grid order (exposed for tests).
std::vector<Job> expand_jobs(const SweepSpec& spec);

}  // namespace allarm::runner
