// Declarative experiment sweeps and the parallel runner that executes them.
//
// The paper's figures are grids — (workload x configuration x directory
// mode), usually with the same workload stream replayed on every machine
// variant.  A SweepSpec describes such a grid once; SweepRunner shards the
// fully-independent jobs across host cores and streams finished cells, in
// grid order, into a ResultSink (see runner/sink.hh).  Output content is
// bit-identical at any --jobs setting (seeds come from grid coordinates,
// cells fold in grid order behind a completion frontier).
//
// Three execution shapes share that core:
//
//  - run():           fold everything into an in-memory SweepResult
//                     (the figure benches' random-access case);
//  - run_streaming(): emit each CellResult as its last replicate finishes
//                     and drop it — O(jobs), not O(grid), results stay
//                     resident; optionally journal every finished job to
//                     disk (resume) and restrict execution to one shard of
//                     the cell grid (multi-machine / CI-matrix sweeps);
//  - merge_journals(): fold N partial shard journals into the same bytes a
//                     single-machine run of the full grid produces.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "runner/job.hh"
#include "workload/spec.hh"

namespace allarm::runner {

class ResultSink;   // runner/sink.hh
class ThreadPool;   // runner/thread_pool.hh

/// One point on the configuration axis: a labelled machine variant.
struct ConfigPoint {
  std::string label;
  SystemConfig config;
  numa::AllocPolicy policy = numa::AllocPolicy::kFirstTouch;
};

/// Builds the workload for one (workload name, machine) pair.
using WorkloadFactory = std::function<workload::WorkloadSpec(
    const std::string& name, const SystemConfig& config,
    std::uint64_t accesses_per_thread)>;

/// A sweep grid: workloads x configs x modes, each cell run `replicates`
/// times.  Axis order is also result order (workload-major, then config,
/// then mode, then replicate).
struct SweepSpec {
  std::string name;
  std::vector<std::string> workloads;  ///< Benchmark profile names.
  std::vector<ConfigPoint> configs;
  std::vector<DirectoryMode> modes;
  std::uint32_t replicates = 1;
  std::uint64_t base_seed = 42;
  std::uint64_t accesses_per_thread = 20000;
  /// Defaults to workload::make_benchmark; tests substitute tiny profiles.
  WorkloadFactory make_workload;

  /// When non-empty, every job additionally captures its executed access
  /// stream to `<capture_dir>/job-<grid-index>.altr`.  Pure side effect:
  /// results and reports are unchanged (not folded into spec_hash).
  std::string capture_dir;
  /// When non-empty, every job replays `<replay_dir>/job-<grid-index>.altr`
  /// instead of its synthetic workload.  With traces captured from the
  /// same spec, the report is byte-identical to the direct run at any
  /// --jobs.  Folded into spec_hash: a replayed sweep is a different
  /// workload source than a synthetic one (the hash covers the directory
  /// name, not the trace contents — like a custom factory, trace bytes
  /// are not hashable up front; do not swap trace files between resumes).
  std::string replay_dir;
  /// Parallel single-simulation config applied to every job
  /// (src/parallel/, docs/PARALLEL.md).  Barrier mode is byte-identical to
  /// the serial kernel, so it is NOT folded into spec_hash (journals stay
  /// resume-compatible across shard counts); lax mode changes results and
  /// is folded.  Jobs always run single-threaded relative to each other —
  /// the sweep pool is sized with parallel::split_budget so jobs x shards
  /// stays within the host budget.
  parallel::ParConfig par;
  /// When true, every job records latency histograms (RunOptions::profile)
  /// which fold into CellResult::profile.  Observability side channel:
  /// default report bytes are unchanged unless the sink's profile mode is
  /// also enabled, and it is NOT folded into spec_hash — journals stay
  /// resume-compatible with or without profiling (a resume that flips the
  /// flag simply lacks histograms for the already-journaled replicates).
  bool profile = false;

  std::uint64_t cell_count() const {
    return static_cast<std::uint64_t>(workloads.size()) * configs.size() *
           modes.size();
  }

  std::uint64_t job_count() const { return cell_count() * replicates; }
};

/// Identity of a sweep, condensed for the report header and the journal
/// stamp.  Derivable from either a SweepSpec or a SweepResult.
struct SweepMeta {
  std::string name;
  std::uint64_t base_seed = 0;
  std::uint32_t replicates = 1;
  std::uint64_t accesses_per_thread = 0;
};

SweepMeta meta_of(const SweepSpec& spec);

/// Hash of everything serializable that determines a sweep's results:
/// axes, labels, machine geometry, seeds (i.e. the seed-derivation
/// scheme), replicates and access budget.  A journal stamped with a
/// different hash must not be resumed — the jobs it records are not the
/// jobs the spec would run.  Caveat: a custom `make_workload` factory is
/// code and cannot be hashed; the hash distinguishes custom-vs-default
/// but NOT two different custom factories, so callers substituting
/// factories must not resume across factory changes.
std::uint64_t spec_hash(const SweepSpec& spec);

/// Identity hash of ONE grid cell: everything that determines that cell's
/// results — workload name, config point, mode, policy, replicates,
/// per-replicate seeds, access budget, workload source — plus the cell's
/// grid position (a reordered grid is a different binding of results to
/// cells).  The per-cell analogue of spec_hash: journals stamp it into
/// every job payload so an incremental re-sweep (StreamOptions::
/// resume_cells) can keep journaled cells whose definition is unchanged
/// and re-run exactly the ones a spec edit invalidated.  Same caveat as
/// spec_hash: a custom make_workload factory hashes by presence only.
std::uint64_t cell_hash(const SweepSpec& spec, std::uint64_t cell_index);

/// One quarantined replicate of a cell: the job failed every attempt and
/// the sweep degraded gracefully instead of aborting (see
/// StreamOptions::quarantine).
struct CellFailure {
  std::uint32_t replicate = 0;  ///< Which replicate of the cell.
  std::uint32_t attempts = 0;   ///< Execution attempts, including retries.
  std::string error;            ///< what() of the last attempt's exception.
};

/// Aggregated results of one grid cell.
struct CellResult {
  std::string workload;
  std::string config_label;
  DirectoryMode mode = DirectoryMode::kBaseline;

  std::vector<std::uint64_t> seeds;     ///< Per-replicate seeds, in order.
  std::vector<core::RunResult> runs;    ///< Per-replicate raw results.
  Summary runtime;                      ///< ROI runtime across replicates.
  std::map<std::string, Summary> stats; ///< Per-statistic aggregates.
  /// Host wall-clock nanoseconds per replicate (execution metadata, not
  /// science).  Zero-count when the runs were never measured.  Excluded
  /// from reports unless the sink's timing mode is enabled.
  Summary wall_ns;
  /// Quarantined replicates, in replicate order.  Empty on a healthy cell
  /// (and a healthy sweep's report bytes are unchanged — the writers emit
  /// a "failed" section only when this is non-empty).  Failed replicates
  /// contribute no runs/runtime/stats samples.
  std::vector<CellFailure> failures;
  /// Latency histograms merged across replicates (SweepSpec::profile).
  /// Empty unless profiling ran; excluded from reports unless the sink's
  /// profile mode is enabled (same side-channel contract as wall_ns).
  std::map<std::string, Histogram> profile;

  /// Copy of everything except the raw `runs` (they dominate the
  /// footprint).  The one place that knows which fields a report carries;
  /// used wherever a cell fans out to sinks that never read runs.
  CellResult summary_copy() const {
    CellResult copy;
    copy.workload = workload;
    copy.config_label = config_label;
    copy.mode = mode;
    copy.seeds = seeds;
    copy.runtime = runtime;
    copy.stats = stats;
    copy.wall_ns = wall_ns;
    copy.failures = failures;
    copy.profile = profile;
    return copy;
  }
};

/// All cells of a sweep, in grid order.
struct SweepResult {
  std::string name;
  std::uint64_t base_seed = 0;
  std::uint32_t replicates = 1;
  std::uint64_t accesses_per_thread = 0;
  std::vector<CellResult> cells;

  // Execution metadata.  Deliberately excluded from the JSON/CSV reports:
  // they vary run to run while the science above must not.
  std::uint32_t jobs_used = 1;
  std::uint64_t tasks_stolen = 0;
  double wall_seconds = 0.0;

  /// Looks up a cell; returns nullptr when absent.
  const CellResult* find(const std::string& workload,
                         const std::string& config_label,
                         DirectoryMode mode) const;

  /// Baseline/ALLARM pair of a (workload, config) cell pair, built from
  /// replicate `replicate` of each.  Throws std::out_of_range when either
  /// cell or replicate is missing.
  core::PairResult pair(const std::string& workload,
                        const std::string& config_label,
                        std::uint32_t replicate = 0) const;
};

/// One shard of a sweep: `index` of `count`, 1-based (the `--shard K/N`
/// notation).  Shards partition the CELL grid — a cell's replicates never
/// split across shards, so every shard can fold its cells' summaries
/// locally and a merge is a pure grid-order interleave.
struct ShardSpec {
  std::uint32_t index = 1;
  std::uint32_t count = 1;
  /// Optional explicit partition: assignment[cell] is the owning shard
  /// (1-based), one entry per grid cell.  Empty = round-robin by cell.
  /// Built by plan_shards() from measured per-cell costs so one slow cell
  /// stops gating every shard's wall clock.  The assignment is NOT stored
  /// in the journal header — resuming a planned shard requires recomputing
  /// the same assignment (same cost journal), which plan_shards makes
  /// deterministic; --merge never checks ownership, so merging planned
  /// shards needs nothing extra.
  std::vector<std::uint32_t> assignment;

  /// True when this shard owns cell `cell_index` (round-robin by cell, so
  /// adjacent — similarly expensive — cells spread across shards; with an
  /// explicit assignment, whatever the plan says).
  bool owns_cell(std::uint64_t cell_index) const {
    if (!assignment.empty()) {
      return cell_index < assignment.size() &&
             assignment[cell_index] == index;
    }
    return cell_index % count == static_cast<std::uint64_t>(index) - 1;
  }

  /// Throws std::invalid_argument unless 1 <= index <= count and every
  /// assignment entry (when present) names a shard in [1, count].
  void validate() const;
};

/// Deterministic cost-aware shard plan: assigns each cell to a shard by
/// greedy longest-processing-time-first (heaviest cell to the least-loaded
/// shard; ties broken by cell index, then lowest shard index), so measured
/// stragglers spread instead of landing round-robin on one machine.
/// `cell_costs` is one positive weight per cell (relative units — only
/// ratios matter).  Returns a 1-based owner per cell, usable as
/// ShardSpec::assignment.  Throws std::invalid_argument on an empty cost
/// vector or shard_count == 0.
std::vector<std::uint32_t> plan_shards(const std::vector<double>& cell_costs,
                                       std::uint32_t shard_count);

/// Measured per-cell costs from a prior journal of the SAME GRID SHAPE:
/// the sum of each cell's journaled per-job wall_ns (last record wins;
/// quarantined or missing jobs contribute the mean measured job cost so a
/// hole never zeroes a cell).  The journal does not need to match the
/// spec's hash — costs are advisory (a cheaper timing run of the same grid
/// plans a full run fine); a wrong cost model only unbalances shards, it
/// never changes a byte of output.  Throws when the journal's job count
/// differs from the spec's.
std::vector<double> cell_costs_from_journal(const SweepSpec& spec,
                                            const std::string& journal_path);

/// Options for run_streaming().
struct StreamOptions {
  /// When non-empty, every finished job is appended to this journal (plus
  /// its `.data` payload sidecar) so the sweep survives a kill -9.
  /// Without `resume`, the journal must not already exist (an existing one
  /// is journaled work; truncating it silently would defeat the point).
  std::string journal_path;
  /// Resume from an existing journal at `journal_path`: jobs it records
  /// are not re-run; their results replay from disk into the sink.  The
  /// journal's spec hash, shard and per-job seeds must match `spec`.
  bool resume = false;
  /// Per-cell incremental resume (implies journal use; combine with
  /// `resume` semantics): instead of refusing a journal whose spec hash
  /// differs, rebind it (Journal::open_rebind) and keep exactly the
  /// journaled jobs whose payload cell hash still matches cell_hash(spec,
  /// cell) and whose seed matches the spec's derivation — every other job
  /// re-runs and supersedes its stale record.  An unchanged spec resumes
  /// everything (identical to `resume`); an edited spec re-runs only the
  /// cells the edit invalidated.  Requires shard.count == 1 (a changed
  /// grid cannot be re-partitioned against stale shard journals).  A
  /// missing journal is created fresh, so one code path serves first run
  /// and re-run.
  bool resume_cells = false;
  ShardSpec shard;
  /// Upper bound on jobs in flight plus finished-but-unfolded results —
  /// the knob that makes peak residency O(jobs) instead of O(grid).
  /// 0 = 4x the worker count (at least 16).
  std::size_t max_outstanding = 0;

  // --- Self-healing knobs (docs/ROBUSTNESS.md) ----------------------------
  //
  // A job that throws is retried up to `cell_retries` times with bounded
  // exponential backoff; because jobs are pure functions of their grid
  // coordinates, a retried job reproduces the failed attempt's bytes
  // exactly.  A job that exhausts its retries either aborts the sweep
  // (quarantine off: first failure rethrows after in-flight jobs drain —
  // the pre-existing behavior and the default) or is quarantined: journaled
  // as a structured failure record and reported in the cell's `failed`
  // section, letting the other cells complete.

  /// Re-execution attempts after a job's first failure (0 = fail fast).
  std::uint32_t cell_retries = 0;
  /// Backoff before retry k (1-based) is `retry_backoff_ms << (k - 1)`.
  std::uint32_t retry_backoff_ms = 100;
  /// Per-job wall-clock watchdog, nanoseconds (0 = none).  A job exceeding
  /// it aborts with a structured no-progress diagnostic instead of hanging
  /// the sweep; the abort then retries/quarantines like any other failure.
  std::uint64_t cell_timeout_ns = 0;
  /// Quarantine permanently failing jobs instead of aborting the sweep.
  bool quarantine = false;

  // --- Service hooks (docs/SERVICE.md) ------------------------------------

  /// Shared worker pool: when non-null, jobs are submitted to this pool
  /// instead of a private one, so several concurrent run_streaming calls
  /// (the sweep service's requests) multiplex onto one set of workers.
  /// The pool must outlive the call; run_streaming never calls
  /// wait_idle() on a shared pool (that would block on other callers'
  /// jobs) — it tracks its own in-flight count.  Byte-output is unchanged:
  /// the pool only schedules, the fold is still grid-ordered.
  ThreadPool* pool = nullptr;
  /// Cooperative drain flag: when non-null and it becomes true, the run
  /// stops issuing new jobs, journals every already-issued completion,
  /// syncs the journal, skips the sink's end-of-stream, and returns with
  /// StreamStats::drained set.  Requires a journal (a drained run without
  /// one would simply lose work).  The sink's output is torn-at-a-cell-
  /// boundary by design — callers discard it and re-run with resume.
  const std::atomic<bool>* stop = nullptr;
  /// When non-null, stores the count of jobs folded so far (resumed +
  /// executed) after each fold step — a lock-free progress gauge for
  /// health reporting.  Written with memory_order_relaxed.
  std::atomic<std::uint64_t>* progress = nullptr;
};

/// Execution metadata of one run_streaming() call.  Never serialized into
/// reports (scheduling-dependent); `peak_resident_results` is the test
/// hook that pins the O(jobs) residency guarantee.
struct StreamStats {
  std::uint32_t jobs_used = 1;
  std::uint64_t tasks_stolen = 0;
  double wall_seconds = 0.0;
  std::uint64_t jobs_total = 0;     ///< Jobs owned by this shard.
  std::uint64_t jobs_executed = 0;  ///< Simulated this run.
  std::uint64_t jobs_resumed = 0;   ///< Replayed from the journal.
  std::uint64_t cells_emitted = 0;
  /// Max count of RunResults resident at once (in flight, awaiting the
  /// grid-order fold, or folded into the partially-assembled cell).
  /// Bounded by StreamOptions::max_outstanding + (replicates - 1): a
  /// result moved into the current cell leaves the admission window but
  /// stays resident until the cell's last replicate emits it.
  std::size_t peak_resident_results = 0;
  /// Jobs quarantined after exhausting retries (0 on a healthy sweep;
  /// non-zero means the report is degraded — see docs/ROBUSTNESS.md).
  std::uint64_t jobs_failed = 0;
  /// Extra execution attempts beyond each job's first (healed transients).
  std::uint64_t jobs_retried = 0;
  /// Cells emitted with at least one quarantined replicate.
  std::uint64_t cells_failed = 0;
  /// True when StreamOptions::stop ended the run early: all issued jobs
  /// were journaled and synced, but the sink never saw end-of-stream and
  /// the remaining jobs never ran.  Resume the journal to finish.
  bool drained = false;
};

/// Backoff before retry `attempt` (1-based) of job `job_index`:
/// `base_ms << (attempt - 1)` plus deterministic jitter in
/// [0, base_ms/2] derived from the job coordinate, so simultaneous
/// failures across jobs (or service requests) don't retry in lockstep
/// while identical runs still reproduce identical schedules.  base_ms == 0
/// disables backoff entirely (returns 0 — tests rely on this).
std::uint64_t retry_backoff_ms(std::uint32_t base_ms, std::uint32_t attempt,
                               std::uint64_t job_index);

/// Executes sweeps on a work-stealing pool.
class SweepRunner {
 public:
  /// `jobs` = worker threads; 0 means core::bench_jobs() (ALLARM_JOBS or
  /// hardware concurrency).
  explicit SweepRunner(std::uint32_t jobs = 0);

  /// Runs every job of `spec` and aggregates into memory.  Output content
  /// depends only on the spec, never on worker count or scheduling.
  SweepResult run(const SweepSpec& spec) const;

  /// Streaming core: runs the jobs of `options.shard`, folds each cell in
  /// grid order into `sink` as its last replicate completes, then drops
  /// it.  With a journal path, finished jobs persist as they complete and
  /// `options.resume` skips already-journaled jobs.  Sink calls happen on
  /// the calling thread.
  StreamStats run_streaming(const SweepSpec& spec, ResultSink& sink,
                            const StreamOptions& options = {}) const;

  std::uint32_t jobs() const { return jobs_; }

 private:
  std::uint32_t jobs_;
};

/// Folds the partial journals of a sharded sweep (any order) into `sink`,
/// producing byte-identical output to a single-machine run of `spec`.
/// Every journal must carry the spec's hash; together they must cover
/// every job exactly once.  Returns stats with jobs_resumed = job count.
StreamStats merge_journals(const SweepSpec& spec,
                           const std::vector<std::string>& journal_paths,
                           ResultSink& sink);

/// Materializes the job list of `spec` in grid order (exposed for tests).
std::vector<Job> expand_jobs(const SweepSpec& spec);

}  // namespace allarm::runner
