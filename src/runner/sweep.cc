#include "runner/sweep.hh"

#include <chrono>
#include <stdexcept>

#include "runner/thread_pool.hh"
#include "workload/profiles.hh"

namespace allarm::runner {

const CellResult* SweepResult::find(const std::string& workload,
                                    const std::string& config_label,
                                    DirectoryMode mode) const {
  for (const auto& cell : cells) {
    if (cell.workload == workload && cell.config_label == config_label &&
        cell.mode == mode) {
      return &cell;
    }
  }
  return nullptr;
}

core::PairResult SweepResult::pair(const std::string& workload,
                                   const std::string& config_label,
                                   std::uint32_t replicate) const {
  const CellResult* base = find(workload, config_label, DirectoryMode::kBaseline);
  const CellResult* allarm = find(workload, config_label, DirectoryMode::kAllarm);
  if (base == nullptr || allarm == nullptr) {
    throw std::out_of_range("sweep has no baseline/ALLARM pair for " +
                            workload + "/" + config_label);
  }
  core::PairResult pair;
  pair.baseline = base->runs.at(replicate);
  pair.allarm = allarm->runs.at(replicate);
  return pair;
}

std::vector<Job> expand_jobs(const SweepSpec& spec) {
  const WorkloadFactory factory =
      spec.make_workload
          ? spec.make_workload
          : [](const std::string& name, const SystemConfig& config,
               std::uint64_t accesses) {
              return workload::make_benchmark(name, config, accesses);
            };
  std::vector<Job> jobs;
  jobs.reserve(spec.job_count());
  for (std::uint32_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::uint32_t c = 0; c < spec.configs.size(); ++c) {
      const ConfigPoint& point = spec.configs[c];
      // The workload layout depends only on the machine geometry, which is
      // identical for both directory modes — build it once per (w, c).
      const workload::WorkloadSpec workload_spec = factory(
          spec.workloads[w], point.config, spec.accesses_per_thread);
      for (std::uint32_t m = 0; m < spec.modes.size(); ++m) {
        for (std::uint32_t r = 0; r < spec.replicates; ++r) {
          Job job;
          job.coord = JobCoord{w, c, m, r};
          job.request.config = point.config;
          job.request.mode = spec.modes[m];
          job.request.spec = workload_spec;
          job.request.seed = job_seed(spec.base_seed, w, r);
          job.request.policy = point.policy;
          jobs.push_back(std::move(job));
        }
      }
    }
  }
  return jobs;
}

SweepRunner::SweepRunner(std::uint32_t jobs)
    : jobs_(jobs > 0 ? jobs : core::bench_jobs()) {}

SweepResult SweepRunner::run(const SweepSpec& spec) const {
  if (spec.workloads.empty() || spec.configs.empty() || spec.modes.empty() ||
      spec.replicates == 0) {
    throw std::invalid_argument("sweep '" + spec.name + "' has an empty axis");
  }
  const auto start = std::chrono::steady_clock::now();

  std::vector<Job> jobs = expand_jobs(spec);
  std::vector<core::RunResult> results(jobs.size());

  // Each job writes only its preassigned slot, so the result layout — and
  // everything aggregated from it — is scheduling-independent.
  ThreadPool pool(jobs_);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    core::RunResult& slot = results[i];
    pool.submit([&job, &slot] { slot = core::run_request(job.request); });
  }
  pool.wait_idle();

  SweepResult out;
  out.name = spec.name;
  out.base_seed = spec.base_seed;
  out.replicates = spec.replicates;
  out.accesses_per_thread = spec.accesses_per_thread;
  out.jobs_used = pool.worker_count();
  out.tasks_stolen = pool.steal_count();

  // Aggregate in grid order: jobs are laid out workload-major with
  // replicates innermost, so each cell is a contiguous slice.
  std::size_t index = 0;
  for (const auto& workload_name : spec.workloads) {
    for (const auto& point : spec.configs) {
      for (const DirectoryMode mode : spec.modes) {
        CellResult cell;
        cell.workload = workload_name;
        cell.config_label = point.label;
        cell.mode = mode;
        for (std::uint32_t r = 0; r < spec.replicates; ++r, ++index) {
          cell.seeds.push_back(jobs[index].request.seed);
          cell.runtime.add(static_cast<double>(results[index].runtime));
          for (const auto& [stat, value] : results[index].stats.values()) {
            cell.stats[stat].add(value);
          }
          cell.runs.push_back(std::move(results[index]));
        }
        out.cells.push_back(std::move(cell));
      }
    }
  }

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace allarm::runner
