#include "runner/sweep.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include <sys/stat.h>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "runner/journal.hh"
#include "runner/sink.hh"
#include "runner/thread_pool.hh"
#include "workload/profiles.hh"

namespace allarm::runner {

namespace {

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void validate_axes(const SweepSpec& spec) {
  if (spec.workloads.empty() || spec.configs.empty() || spec.modes.empty() ||
      spec.replicates == 0) {
    throw std::invalid_argument("sweep '" + spec.name + "' has an empty axis");
  }
}

// Drift guard: fold_config() below enumerates every SystemConfig field by
// hand.  A new results-affecting field that is not folded would let two
// different configurations share a spec hash — the silent mix-up the hash
// exists to refuse — so growing the struct must fail loudly here until
// fold_config() is updated (the size is stable on the LP64 targets this
// simulator supports).
static_assert(sizeof(SystemConfig) == 176,
              "SystemConfig changed: update fold_config() to hash the new "
              "field, then update this assert");

void fold_config(Fnv1a64& h, const SystemConfig& c) {
  const auto fold_cache = [&h](const CacheConfig& cache) {
    h.update_u32(cache.size_bytes);
    h.update_u32(cache.ways);
    h.update_u64(static_cast<std::uint64_t>(cache.latency));
  };
  h.update_u32(c.num_cores);
  h.update_double(c.core_freq_ghz);
  fold_cache(c.l1i);
  fold_cache(c.l1d);
  fold_cache(c.l2);
  h.update_u32(static_cast<std::uint32_t>(c.cache_replacement));
  h.update_u32(c.probe_filter_coverage_bytes);
  h.update_u32(c.probe_filter_ways);
  h.update_u64(static_cast<std::uint64_t>(c.probe_filter_latency));
  h.update_u32(static_cast<std::uint32_t>(c.probe_filter_replacement));
  h.update_u32(static_cast<std::uint32_t>(c.directory_mode));
  h.update_u32(c.allarm_parallel_local_probe ? 1 : 0);
  h.update_u32(c.eviction_gates_reply ? 1 : 0);
  h.update_u32(c.region_size_bytes);
  h.update_u64(c.dram_total_bytes);
  h.update_u64(static_cast<std::uint64_t>(c.dram_latency));
  h.update_u64(static_cast<std::uint64_t>(c.dram_cycle));
  h.update_u32(c.mesh_width);
  h.update_u32(c.mesh_height);
  h.update_u32(c.flit_bytes);
  h.update_u32(c.control_msg_bytes);
  h.update_u32(c.data_msg_bytes);
  h.update_double(c.link_bandwidth_gbps);
  h.update_u64(static_cast<std::uint64_t>(c.link_latency));
  h.update_u64(static_cast<std::uint64_t>(c.router_latency));
  h.update_u64(static_cast<std::uint64_t>(c.local_hop_latency));
}

/// What one job contributed: a result, or (quarantine path) a structured
/// failure that the cell reports instead of a replicate's samples.
struct JobOutcome {
  core::RunResult result;
  bool failed = false;
  std::uint32_t attempts = 1;
  std::string error;
};

/// The grid-order streaming fold shared by live runs and journal merges:
/// pulls job results through `result_of`, assembles each cell, hands it to
/// `sink`, drops it.  `job_indices` must be a grid-ordered subset of whole
/// cells (replicates never split).
class CellFolder {
 public:
  CellFolder(const SweepSpec& spec, const std::vector<Job>& jobs,
             ResultSink& sink)
      : spec_(spec), jobs_(jobs), sink_(sink) {}

  /// Folds one outcome; must be called in grid order.  A failed outcome
  /// contributes a CellFailure instead of runtime/stat samples (the seed is
  /// still recorded — it is what the replicate would have run with).
  void fold(std::uint64_t job_index, JobOutcome&& outcome) {
    const Job& job = jobs_[job_index];
    if (fill_ == 0) {
      cell_ = CellResult{};
      cell_.workload = spec_.workloads[job.coord.workload];
      cell_.config_label = spec_.configs[job.coord.config].label;
      cell_.mode = spec_.modes[job.coord.mode];
    }
    cell_.seeds.push_back(job.request.seed);
    if (outcome.failed) {
      CellFailure failure;
      failure.replicate = job.coord.replicate;
      failure.attempts = outcome.attempts;
      failure.error = std::move(outcome.error);
      cell_.failures.push_back(std::move(failure));
    } else {
      core::RunResult result = std::move(outcome.result);
      cell_.runtime.add(static_cast<double>(result.runtime));
      if (result.wall_ns != 0) {
        cell_.wall_ns.add(static_cast<double>(result.wall_ns));
      }
      for (const auto& [stat, value] : result.stats.values()) {
        cell_.stats[stat].add(value);
      }
      cell_.runs.push_back(std::move(result));
    }
    if (++fill_ == spec_.replicates) {
      if (!cell_.failures.empty()) ++cells_failed_;
      sink_.cell(std::move(cell_));
      cell_ = CellResult{};
      fill_ = 0;
      ++cells_emitted_;
    }
  }

  std::uint32_t partial_fill() const { return fill_; }
  std::uint64_t cells_emitted() const { return cells_emitted_; }
  std::uint64_t cells_failed() const { return cells_failed_; }

 private:
  const SweepSpec& spec_;
  const std::vector<Job>& jobs_;
  ResultSink& sink_;
  CellResult cell_;
  std::uint32_t fill_ = 0;
  std::uint64_t cells_emitted_ = 0;
  std::uint64_t cells_failed_ = 0;
};

/// Global job indices owned by `shard`, in grid order (whole cells).
std::vector<std::uint64_t> owned_job_indices(const SweepSpec& spec,
                                             const ShardSpec& shard) {
  std::vector<std::uint64_t> owned;
  const std::uint64_t cells = spec.cell_count();
  for (std::uint64_t cell = 0; cell < cells; ++cell) {
    if (!shard.owns_cell(cell)) continue;
    for (std::uint32_t r = 0; r < spec.replicates; ++r) {
      owned.push_back(cell * spec.replicates + r);
    }
  }
  return owned;
}

void check_entry_seed(const std::string& path, const JournalEntry& entry,
                      const std::vector<Job>& jobs) {
  if (entry.seed != jobs[entry.job_index].request.seed) {
    throw std::runtime_error(
        "journal " + path + ": job " + std::to_string(entry.job_index) +
        " was journaled with seed " + std::to_string(entry.seed) +
        " but the spec derives " +
        std::to_string(jobs[entry.job_index].request.seed) +
        " — seed derivation mismatch, refusing to resume");
  }
}

}  // namespace

// ----------------------------------------------------------- spec identity ----

SweepMeta meta_of(const SweepSpec& spec) {
  SweepMeta meta;
  meta.name = spec.name;
  meta.base_seed = spec.base_seed;
  meta.replicates = spec.replicates;
  meta.accesses_per_thread = spec.accesses_per_thread;
  return meta;
}

std::uint64_t spec_hash(const SweepSpec& spec) {
  Fnv1a64 h;
  h.update(std::string("allarm-sweep-v1"));
  h.update(spec.name);
  h.update_u64(spec.workloads.size());
  for (const auto& w : spec.workloads) h.update(w);
  h.update_u64(spec.configs.size());
  for (const auto& point : spec.configs) {
    h.update(point.label);
    h.update_u32(static_cast<std::uint32_t>(point.policy));
    fold_config(h, point.config);
  }
  h.update_u64(spec.modes.size());
  for (const DirectoryMode mode : spec.modes) {
    h.update_u32(static_cast<std::uint32_t>(mode));
  }
  h.update_u32(spec.replicates);
  h.update_u64(spec.base_seed);
  h.update_u64(spec.accesses_per_thread);
  // A custom factory is code — unhashable.  Folding its presence at least
  // separates custom-factory journals from default-factory ones.
  h.update_u32(spec.make_workload ? 1 : 0);
  // Trace replay changes every job's workload source; fold it so a
  // replayed sweep's journal can never resume a synthetic one (or vice
  // versa).  Capture is a pure side effect and is deliberately NOT folded.
  if (!spec.replay_dir.empty()) {
    h.update(std::string("replay"));
    h.update(spec.replay_dir);
  }
  // Parallel mode: barrier is byte-identical to serial at any shard count
  // (the kernel merge preserves global (tick, seq) order), so folding it
  // would needlessly split resume-compatible journals.  Lax changes the
  // numbers — fold shards and slack so a lax journal can never resume a
  // serial/barrier sweep (or a lax one with different knobs).
  if (spec.par.enabled() && spec.par.mode == parallel::ParMode::kLax) {
    h.update(std::string("par-lax"));
    h.update_u32(spec.par.shards);
    h.update_u64(spec.par.slack);
  }
  // Fold every per-job seed: a change to the derivation scheme (or the
  // base seed) changes the hash even when the axes look identical.
  for (std::uint32_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::uint32_t r = 0; r < spec.replicates; ++r) {
      h.update_u64(job_seed(spec.base_seed, w, r));
    }
  }
  return h.digest();
}

void ShardSpec::validate() const {
  if (count == 0 || index == 0 || index > count) {
    throw std::invalid_argument("invalid shard " + std::to_string(index) +
                                "/" + std::to_string(count) +
                                " (want 1 <= K <= N)");
  }
}

// ------------------------------------------------------------- SweepResult ----

const CellResult* SweepResult::find(const std::string& workload,
                                    const std::string& config_label,
                                    DirectoryMode mode) const {
  for (const auto& cell : cells) {
    if (cell.workload == workload && cell.config_label == config_label &&
        cell.mode == mode) {
      return &cell;
    }
  }
  return nullptr;
}

core::PairResult SweepResult::pair(const std::string& workload,
                                   const std::string& config_label,
                                   std::uint32_t replicate) const {
  const CellResult* base = find(workload, config_label, DirectoryMode::kBaseline);
  const CellResult* allarm = find(workload, config_label, DirectoryMode::kAllarm);
  if (base == nullptr || allarm == nullptr) {
    throw std::out_of_range("sweep has no baseline/ALLARM pair for " +
                            workload + "/" + config_label);
  }
  core::PairResult pair;
  pair.baseline = base->runs.at(replicate);
  pair.allarm = allarm->runs.at(replicate);
  return pair;
}

std::vector<Job> expand_jobs(const SweepSpec& spec) {
  const WorkloadFactory factory =
      spec.make_workload
          ? spec.make_workload
          : [](const std::string& name, const SystemConfig& config,
               std::uint64_t accesses) {
              return workload::make_benchmark(name, config, accesses);
            };
  std::vector<Job> jobs;
  jobs.reserve(spec.job_count());
  for (std::uint32_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::uint32_t c = 0; c < spec.configs.size(); ++c) {
      const ConfigPoint& point = spec.configs[c];
      // The workload layout depends only on the machine geometry, which is
      // identical for both directory modes — build it once per (w, c).
      const workload::WorkloadSpec workload_spec = factory(
          spec.workloads[w], point.config, spec.accesses_per_thread);
      for (std::uint32_t m = 0; m < spec.modes.size(); ++m) {
        for (std::uint32_t r = 0; r < spec.replicates; ++r) {
          Job job;
          job.coord = JobCoord{w, c, m, r};
          job.request.config = point.config;
          job.request.mode = spec.modes[m];
          job.request.spec = workload_spec;
          job.request.seed = job_seed(spec.base_seed, w, r);
          job.request.policy = point.policy;
          job.request.par = spec.par;
          // Traces pair with jobs by grid index (== jobs.size() here:
          // the loops enumerate the grid in order), so a capture run's
          // directory replays positionally under the same spec.
          if (!spec.capture_dir.empty()) {
            job.request.capture_trace = spec.capture_dir + "/job-" +
                                        std::to_string(jobs.size()) + ".altr";
          }
          if (!spec.replay_dir.empty()) {
            job.request.replay_trace = spec.replay_dir + "/job-" +
                                       std::to_string(jobs.size()) + ".altr";
          }
          jobs.push_back(std::move(job));
        }
      }
    }
  }
  return jobs;
}

// -------------------------------------------------------------- SweepRunner ----

SweepRunner::SweepRunner(std::uint32_t jobs)
    : jobs_(jobs > 0 ? jobs : core::bench_jobs()) {}

SweepResult SweepRunner::run(const SweepSpec& spec) const {
  SweepResult out;
  CollectSink sink(out);
  const StreamStats stats = run_streaming(spec, sink);
  out.jobs_used = stats.jobs_used;
  out.tasks_stolen = stats.tasks_stolen;
  out.wall_seconds = stats.wall_seconds;
  return out;
}

StreamStats SweepRunner::run_streaming(const SweepSpec& spec, ResultSink& sink,
                                       const StreamOptions& options) const {
  validate_axes(spec);
  options.shard.validate();
  if (options.resume && options.journal_path.empty()) {
    throw std::invalid_argument("resume requires a journal path");
  }
  const auto start = std::chrono::steady_clock::now();

  const std::vector<Job> jobs = expand_jobs(spec);
  const std::vector<std::uint64_t> owned =
      owned_job_indices(spec, options.shard);

  StreamStats stats;
  stats.jobs_total = owned.size();

  // The journal, and the already-done jobs a resume replays from it.
  std::optional<Journal> journal;
  std::unordered_map<std::uint64_t, JournalEntry> resumed;
  if (!options.journal_path.empty()) {
    JournalMeta meta;
    meta.spec_hash = spec_hash(spec);
    meta.job_count = jobs.size();
    meta.base_seed = spec.base_seed;
    meta.shard_index = options.shard.index;
    meta.shard_count = options.shard.count;
    const bool exists = file_exists(options.journal_path);
    if (!options.resume && exists) {
      // Never silently truncate journaled work — it is exactly the data
      // the journal exists to protect.
      throw std::runtime_error(
          "journal " + options.journal_path +
          " already exists; resume it (--resume) or delete it to start "
          "fresh");
    }
    if (options.resume && exists) {
      journal.emplace(Journal::open_resume(options.journal_path, meta));
      for (const JournalEntry& entry : journal->index().entries) {
        check_entry_seed(options.journal_path, entry, jobs);
        if (!options.shard.owns_cell(entry.job_index / spec.replicates)) {
          throw std::runtime_error("journal " + options.journal_path +
                                   ": records job " +
                                   std::to_string(entry.job_index) +
                                   " outside this shard");
        }
        if (!entry.payload_ok) continue;
        if (entry.failed) {
          // A quarantined job is not done — the resume re-runs it (and a
          // success it journals supersedes the failure, last-record-wins).
          resumed.erase(entry.job_index);
        } else {
          resumed[entry.job_index] = entry;  // Last wins.
        }
      }
    } else {
      journal.emplace(Journal::create(options.journal_path, meta));
    }
  }

  // Completion plumbing must outlive the pool: if a sink throws mid-sweep,
  // the pool's destructor still drains in-flight jobs, which push here.
  // A job that throws (e.g. a missing/corrupt --replay trace) parks its
  // exception instead of a result — letting it escape on a pool worker
  // would std::terminate the process instead of the documented
  // std::runtime_error -> nonzero-exit error path.
  struct Completion {
    std::uint64_t job_index = 0;
    core::RunResult result;
    std::uint32_t attempts = 1;  ///< Execution attempts, including retries.
    bool failed = false;         ///< Every attempt threw.
    std::string error_text;      ///< what() of the last attempt's exception.
    std::exception_ptr error;    ///< Same exception, for the rethrow path.
  };
  std::mutex mutex;
  std::condition_variable done_cv;
  std::vector<Completion> completed;

  // A par-sharded sweep splits the host thread budget between concurrent
  // jobs and per-job shard work (parallel::split_budget): the lane merge
  // and flush cost per job scales with shards, so jobs x shards stays
  // within the --jobs budget instead of multiplying past it.
  ThreadPool pool(parallel::split_budget(jobs_, spec.par.shards));
  const std::size_t window =
      options.max_outstanding > 0
          ? options.max_outstanding
          : std::max<std::size_t>(16, std::size_t{4} * pool.worker_count());

  sink.begin(meta_of(spec));
  CellFolder folder(spec, jobs, sink);

  // In-flight bookkeeping, all owned by this (the folding) thread.
  std::map<std::uint64_t, JobOutcome> resident;  // Done, not yet folded.
  std::size_t next = 0;          // Next owned[] position to issue.
  std::size_t fold_pos = 0;      // Next owned[] position to fold.
  std::size_t outstanding = 0;   // Issued but not yet folded.

  const auto note_peak = [&] {
    const std::size_t now = resident.size() + folder.partial_fill();
    if (now > stats.peak_resident_results) stats.peak_resident_results = now;
  };

  while (fold_pos < owned.size()) {
    // Issue jobs while the outstanding window has room.  Journaled jobs
    // replay straight into `resident`; fresh jobs go to the pool.
    while (next < owned.size() && outstanding < window) {
      const std::uint64_t job_index = owned[next];
      ++next;
      ++outstanding;
      const auto it = resumed.find(job_index);
      if (it != resumed.end()) {
        JobOutcome outcome;
        outcome.result = journal->read_payload(it->second);
        resident.emplace(job_index, std::move(outcome));
        ++stats.jobs_resumed;
        note_peak();
      } else {
        const Job& job = jobs[job_index];
        // Self-healing execution: a job that throws is retried with
        // bounded exponential backoff.  Retries are safe to the byte —
        // jobs are pure functions of their RunRequest, so a retried job
        // reproduces exactly what the failed attempt would have produced.
        // Two failpoints make faults schedulable under any worker count:
        // `cell.attempt` counts attempts process-wide (transient faults
        // that heal on retry); `cell.job` matches the grid-order job index
        // (permanent faults pinned to a cell regardless of scheduling).
        const std::uint32_t max_attempts = options.cell_retries + 1;
        const std::uint32_t backoff_ms = options.retry_backoff_ms;
        const std::uint64_t deadline_ns = options.cell_timeout_ns;
        pool.submit([&job, job_index, max_attempts, backoff_ms, deadline_ns,
                     &mutex, &done_cv, &completed] {
          Completion done;
          done.job_index = job_index;
          for (std::uint32_t attempt = 1;; ++attempt) {
            done.attempts = attempt;
            try {
              if (attempt > 1 && backoff_ms > 0) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    static_cast<std::uint64_t>(backoff_ms) << (attempt - 2)));
              }
              if (const auto hit =
                      failpoint::check_indexed("cell.job", job_index)) {
                if (hit.action == failpoint::Action::kDelay) {
                  std::this_thread::sleep_for(
                      std::chrono::milliseconds(hit.arg));
                } else {
                  throw std::runtime_error(
                      "job " + std::to_string(job_index) +
                      ": injected fault (failpoint cell.job)");
                }
              }
              if (const auto hit = failpoint::check("cell.attempt")) {
                if (hit.action == failpoint::Action::kDelay) {
                  std::this_thread::sleep_for(
                      std::chrono::milliseconds(hit.arg));
                } else {
                  throw std::runtime_error(
                      "job " + std::to_string(job_index) +
                      ": injected fault (failpoint cell.attempt)");
                }
              }
              done.result = core::run_request(job.request, deadline_ns);
              done.failed = false;
              break;
            } catch (const std::exception& e) {
              done.failed = true;
              done.error_text = e.what();
              done.error = std::current_exception();
            } catch (...) {
              done.failed = true;
              done.error_text = "unknown exception";
              done.error = std::current_exception();
            }
            if (attempt >= max_attempts) break;
          }
          {
            std::lock_guard<std::mutex> lock(mutex);
            completed.push_back(std::move(done));
          }
          done_cv.notify_one();
        });
        ++stats.jobs_executed;
      }
    }

    // Collect finished jobs.  Block only when neither issuing nor folding
    // can make progress — then some pool job is still running and its
    // completion is the only possible next event.
    std::vector<Completion> batch;
    {
      std::unique_lock<std::mutex> lock(mutex);
      if (completed.empty()) {
        const bool can_issue = next < owned.size() && outstanding < window;
        const bool can_fold =
            fold_pos < owned.size() && resident.count(owned[fold_pos]) > 0;
        if (!can_issue && !can_fold) {
          done_cv.wait(lock, [&] { return !completed.empty(); });
        }
      }
      batch.swap(completed);
    }
    for (Completion& done : batch) {
      stats.jobs_retried += done.attempts - 1;
      const std::uint64_t seed = jobs[done.job_index].request.seed;
      if (done.failed) {
        // Out of retries.  Without quarantine, rethrow on this (the
        // folding) thread, where callers expect sweep errors to surface —
        // in-flight jobs drain through the pool destructor and their
        // completions are simply dropped.  With quarantine, the failure
        // becomes data: journaled (so a resume re-runs the job) and folded
        // into the cell's `failed` section so the rest of the sweep
        // completes.
        if (!options.quarantine) std::rethrow_exception(done.error);
        ++stats.jobs_failed;
        FailureRecord failure;
        failure.attempts = done.attempts;
        failure.error = done.error_text;
        if (journal) journal->append_failed(done.job_index, seed, failure);
        JobOutcome outcome;
        outcome.failed = true;
        outcome.attempts = done.attempts;
        outcome.error = std::move(done.error_text);
        resident.emplace(done.job_index, std::move(outcome));
      } else {
        if (journal) journal->append(done.job_index, seed, done.result);
        JobOutcome outcome;
        outcome.result = std::move(done.result);
        outcome.attempts = done.attempts;
        resident.emplace(done.job_index, std::move(outcome));
      }
    }
    note_peak();

    // Fold the contiguous completed prefix, in grid order.
    while (fold_pos < owned.size()) {
      const auto it = resident.find(owned[fold_pos]);
      if (it == resident.end()) break;
      JobOutcome outcome = std::move(it->second);
      resident.erase(it);
      folder.fold(owned[fold_pos], std::move(outcome));
      ++fold_pos;
      --outstanding;
    }
  }

  pool.wait_idle();  // All owned jobs folded, so this returns immediately.
  sink.end();
  if (journal) journal->close();

  stats.jobs_used = pool.worker_count();
  stats.tasks_stolen = pool.steal_count();
  stats.cells_emitted = folder.cells_emitted();
  stats.cells_failed = folder.cells_failed();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

// ----------------------------------------------------------- journal merge ----

StreamStats merge_journals(const SweepSpec& spec,
                           const std::vector<std::string>& journal_paths,
                           ResultSink& sink) {
  validate_axes(spec);
  if (journal_paths.empty()) {
    throw std::invalid_argument("merge needs at least one journal");
  }
  const auto start = std::chrono::steady_clock::now();

  const std::vector<Job> jobs = expand_jobs(spec);
  const std::uint64_t expected_hash = spec_hash(spec);

  std::vector<Journal> journals;
  journals.reserve(journal_paths.size());
  // where[job] = (journal position, entry) of the winning record.
  std::vector<std::optional<std::pair<std::size_t, JournalEntry>>> where(
      jobs.size());

  for (std::size_t j = 0; j < journal_paths.size(); ++j) {
    const std::string& path = journal_paths[j];
    Journal journal = Journal::open_read(path);
    const JournalMeta& meta = journal.meta();
    if (meta.spec_hash != expected_hash) {
      throw std::runtime_error("journal " + path +
                               ": spec hash mismatch — it records a "
                               "different sweep than the one being merged");
    }
    if (meta.job_count != jobs.size() || meta.base_seed != spec.base_seed) {
      throw std::runtime_error("journal " + path +
                               ": grid shape or base seed mismatch");
    }
    for (const JournalEntry& entry : journal.index().entries) {
      if (!entry.payload_ok) continue;  // Damaged payload: job is missing.
      // Quarantine records participate like results: an unsuperseded
      // failure folds into the report's `failed` section below (it is a
      // recorded outcome, not a missing job), and a later success record
      // in the same journal supersedes it via last-record-wins.
      check_entry_seed(path, entry, jobs);
      auto& slot = where[entry.job_index];
      if (slot && slot->first != j) {
        throw std::runtime_error(
            "journals " + journal_paths[slot->first] + " and " + path +
            " overlap at job " + std::to_string(entry.job_index) +
            " — shards must partition the grid");
      }
      slot = std::make_pair(j, entry);  // Within one journal, last wins.
    }
    journals.push_back(std::move(journal));
  }

  std::uint64_t missing = 0;
  for (const auto& slot : where) {
    if (!slot) ++missing;
  }
  if (missing > 0) {
    throw std::runtime_error(
        "merge is incomplete: " + std::to_string(missing) + " of " +
        std::to_string(jobs.size()) +
        " jobs appear in no journal (did every shard finish?)");
  }

  StreamStats stats;
  stats.jobs_total = jobs.size();
  stats.jobs_resumed = jobs.size();

  sink.begin(meta_of(spec));
  CellFolder folder(spec, jobs, sink);
  for (std::uint64_t job_index = 0; job_index < jobs.size(); ++job_index) {
    const auto& [journal_pos, entry] = *where[job_index];
    JobOutcome outcome;
    if (entry.failed) {
      FailureRecord failure = journals[journal_pos].read_failure(entry);
      outcome.failed = true;
      outcome.attempts = failure.attempts;
      outcome.error = std::move(failure.error);
      ++stats.jobs_failed;
    } else {
      outcome.result = journals[journal_pos].read_payload(entry);
    }
    folder.fold(job_index, std::move(outcome));
    const std::size_t now = folder.partial_fill();
    if (now > stats.peak_resident_results) stats.peak_resident_results = now;
  }
  sink.end();

  stats.cells_emitted = folder.cells_emitted();
  stats.cells_failed = folder.cells_failed();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace allarm::runner
