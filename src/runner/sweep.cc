#include "runner/sweep.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include <sys/stat.h>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "common/rng.hh"
#include "obs/timeline.hh"
#include "runner/journal.hh"
#include "runner/sink.hh"
#include "runner/thread_pool.hh"
#include "workload/profiles.hh"

namespace allarm::runner {

namespace {

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void validate_axes(const SweepSpec& spec) {
  if (spec.workloads.empty() || spec.configs.empty() || spec.modes.empty() ||
      spec.replicates == 0) {
    throw std::invalid_argument("sweep '" + spec.name + "' has an empty axis");
  }
}

// Drift guard: fold_config() below enumerates every SystemConfig field by
// hand.  A new results-affecting field that is not folded would let two
// different configurations share a spec hash — the silent mix-up the hash
// exists to refuse — so growing the struct must fail loudly here until
// fold_config() is updated (the size is stable on the LP64 targets this
// simulator supports).
static_assert(sizeof(SystemConfig) == 176,
              "SystemConfig changed: update fold_config() to hash the new "
              "field, then update this assert");

void fold_config(Fnv1a64& h, const SystemConfig& c) {
  const auto fold_cache = [&h](const CacheConfig& cache) {
    h.update_u32(cache.size_bytes);
    h.update_u32(cache.ways);
    h.update_u64(static_cast<std::uint64_t>(cache.latency));
  };
  h.update_u32(c.num_cores);
  h.update_double(c.core_freq_ghz);
  fold_cache(c.l1i);
  fold_cache(c.l1d);
  fold_cache(c.l2);
  h.update_u32(static_cast<std::uint32_t>(c.cache_replacement));
  h.update_u32(c.probe_filter_coverage_bytes);
  h.update_u32(c.probe_filter_ways);
  h.update_u64(static_cast<std::uint64_t>(c.probe_filter_latency));
  h.update_u32(static_cast<std::uint32_t>(c.probe_filter_replacement));
  h.update_u32(static_cast<std::uint32_t>(c.directory_mode));
  h.update_u32(c.allarm_parallel_local_probe ? 1 : 0);
  h.update_u32(c.eviction_gates_reply ? 1 : 0);
  h.update_u32(c.region_size_bytes);
  h.update_u64(c.dram_total_bytes);
  h.update_u64(static_cast<std::uint64_t>(c.dram_latency));
  h.update_u64(static_cast<std::uint64_t>(c.dram_cycle));
  h.update_u32(c.mesh_width);
  h.update_u32(c.mesh_height);
  h.update_u32(c.flit_bytes);
  h.update_u32(c.control_msg_bytes);
  h.update_u32(c.data_msg_bytes);
  h.update_double(c.link_bandwidth_gbps);
  h.update_u64(static_cast<std::uint64_t>(c.link_latency));
  h.update_u64(static_cast<std::uint64_t>(c.router_latency));
  h.update_u64(static_cast<std::uint64_t>(c.local_hop_latency));
}

/// What one job contributed: a result, or (quarantine path) a structured
/// failure that the cell reports instead of a replicate's samples.
struct JobOutcome {
  core::RunResult result;
  bool failed = false;
  std::uint32_t attempts = 1;
  std::string error;
};

/// The grid-order streaming fold shared by live runs and journal merges:
/// pulls job results through `result_of`, assembles each cell, hands it to
/// `sink`, drops it.  `job_indices` must be a grid-ordered subset of whole
/// cells (replicates never split).
class CellFolder {
 public:
  CellFolder(const SweepSpec& spec, const std::vector<Job>& jobs,
             ResultSink& sink)
      : spec_(spec), jobs_(jobs), sink_(sink) {}

  /// Folds one outcome; must be called in grid order.  A failed outcome
  /// contributes a CellFailure instead of runtime/stat samples (the seed is
  /// still recorded — it is what the replicate would have run with).
  void fold(std::uint64_t job_index, JobOutcome&& outcome) {
    const Job& job = jobs_[job_index];
    if (fill_ == 0) {
      cell_ = CellResult{};
      cell_.workload = spec_.workloads[job.coord.workload];
      cell_.config_label = spec_.configs[job.coord.config].label;
      cell_.mode = spec_.modes[job.coord.mode];
    }
    cell_.seeds.push_back(job.request.seed);
    if (outcome.failed) {
      CellFailure failure;
      failure.replicate = job.coord.replicate;
      failure.attempts = outcome.attempts;
      failure.error = std::move(outcome.error);
      cell_.failures.push_back(std::move(failure));
    } else {
      core::RunResult result = std::move(outcome.result);
      cell_.runtime.add(static_cast<double>(result.runtime));
      if (result.wall_ns != 0) {
        cell_.wall_ns.add(static_cast<double>(result.wall_ns));
      }
      for (const auto& [stat, value] : result.stats.values()) {
        cell_.stats[stat].add(value);
      }
      // Histogram merge is commutative, but fold() runs in grid order
      // anyway, so cell profiles are bit-identical at any --jobs.
      for (const auto& [metric, hist] : result.profile) {
        cell_.profile[metric].merge(hist);
      }
      cell_.runs.push_back(std::move(result));
    }
    if (++fill_ == spec_.replicates) {
      if (!cell_.failures.empty()) ++cells_failed_;
      {
        OBS_SPAN_N("sink.cell", "sink", cells_emitted_);
        sink_.cell(std::move(cell_));
      }
      cell_ = CellResult{};
      fill_ = 0;
      ++cells_emitted_;
    }
  }

  std::uint32_t partial_fill() const { return fill_; }
  std::uint64_t cells_emitted() const { return cells_emitted_; }
  std::uint64_t cells_failed() const { return cells_failed_; }

 private:
  const SweepSpec& spec_;
  const std::vector<Job>& jobs_;
  ResultSink& sink_;
  CellResult cell_;
  std::uint32_t fill_ = 0;
  std::uint64_t cells_emitted_ = 0;
  std::uint64_t cells_failed_ = 0;
};

/// Global job indices owned by `shard`, in grid order (whole cells).
std::vector<std::uint64_t> owned_job_indices(const SweepSpec& spec,
                                             const ShardSpec& shard) {
  std::vector<std::uint64_t> owned;
  const std::uint64_t cells = spec.cell_count();
  for (std::uint64_t cell = 0; cell < cells; ++cell) {
    if (!shard.owns_cell(cell)) continue;
    for (std::uint32_t r = 0; r < spec.replicates; ++r) {
      owned.push_back(cell * spec.replicates + r);
    }
  }
  return owned;
}

void check_entry_seed(const std::string& path, const JournalEntry& entry,
                      const std::vector<Job>& jobs) {
  if (entry.seed != jobs[entry.job_index].request.seed) {
    throw std::runtime_error(
        "journal " + path + ": job " + std::to_string(entry.job_index) +
        " was journaled with seed " + std::to_string(entry.seed) +
        " but the spec derives " +
        std::to_string(jobs[entry.job_index].request.seed) +
        " — seed derivation mismatch, refusing to resume");
  }
}

}  // namespace

// ----------------------------------------------------------- spec identity ----

SweepMeta meta_of(const SweepSpec& spec) {
  SweepMeta meta;
  meta.name = spec.name;
  meta.base_seed = spec.base_seed;
  meta.replicates = spec.replicates;
  meta.accesses_per_thread = spec.accesses_per_thread;
  return meta;
}

std::uint64_t spec_hash(const SweepSpec& spec) {
  Fnv1a64 h;
  h.update(std::string("allarm-sweep-v1"));
  h.update(spec.name);
  h.update_u64(spec.workloads.size());
  for (const auto& w : spec.workloads) h.update(w);
  h.update_u64(spec.configs.size());
  for (const auto& point : spec.configs) {
    h.update(point.label);
    h.update_u32(static_cast<std::uint32_t>(point.policy));
    fold_config(h, point.config);
  }
  h.update_u64(spec.modes.size());
  for (const DirectoryMode mode : spec.modes) {
    h.update_u32(static_cast<std::uint32_t>(mode));
  }
  h.update_u32(spec.replicates);
  h.update_u64(spec.base_seed);
  h.update_u64(spec.accesses_per_thread);
  // A custom factory is code — unhashable.  Folding its presence at least
  // separates custom-factory journals from default-factory ones.
  h.update_u32(spec.make_workload ? 1 : 0);
  // Trace replay changes every job's workload source; fold it so a
  // replayed sweep's journal can never resume a synthetic one (or vice
  // versa).  Capture is a pure side effect and is deliberately NOT folded.
  if (!spec.replay_dir.empty()) {
    h.update(std::string("replay"));
    h.update(spec.replay_dir);
  }
  // Parallel mode: barrier is byte-identical to serial at any shard count
  // (the kernel merge preserves global (tick, seq) order), so folding it
  // would needlessly split resume-compatible journals.  Lax changes the
  // numbers — fold shards and slack so a lax journal can never resume a
  // serial/barrier sweep (or a lax one with different knobs).
  if (spec.par.enabled() && spec.par.mode == parallel::ParMode::kLax) {
    h.update(std::string("par-lax"));
    h.update_u32(spec.par.shards);
    h.update_u64(spec.par.slack);
  }
  // Fold every per-job seed: a change to the derivation scheme (or the
  // base seed) changes the hash even when the axes look identical.
  for (std::uint32_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::uint32_t r = 0; r < spec.replicates; ++r) {
      h.update_u64(job_seed(spec.base_seed, w, r));
    }
  }
  return h.digest();
}

std::uint64_t cell_hash(const SweepSpec& spec, std::uint64_t cell_index) {
  validate_axes(spec);
  if (cell_index >= spec.cell_count()) {
    throw std::out_of_range("cell_hash: cell " + std::to_string(cell_index) +
                            " outside grid of " +
                            std::to_string(spec.cell_count()));
  }
  // Invert the grid enumeration: cell = (w * |configs| + c) * |modes| + m.
  const std::uint64_t m = cell_index % spec.modes.size();
  const std::uint64_t c = (cell_index / spec.modes.size()) % spec.configs.size();
  const std::uint64_t w = cell_index / (spec.modes.size() * spec.configs.size());

  Fnv1a64 h;
  h.update(std::string("allarm-cell-v1"));
  // The position is part of the identity: journals bind results to grid
  // indices, so the same (workload, config, mode) at a different index is
  // a different binding.
  h.update_u64(cell_index);
  h.update(spec.workloads[w]);
  const ConfigPoint& point = spec.configs[c];
  h.update(point.label);
  h.update_u32(static_cast<std::uint32_t>(point.policy));
  fold_config(h, point.config);
  h.update_u32(static_cast<std::uint32_t>(spec.modes[m]));
  h.update_u32(spec.replicates);
  h.update_u64(spec.accesses_per_thread);
  // Same workload-source folds as spec_hash, same caveats (a custom
  // factory hashes by presence; capture is a pure side effect).
  h.update_u32(spec.make_workload ? 1 : 0);
  if (!spec.replay_dir.empty()) {
    h.update(std::string("replay"));
    h.update(spec.replay_dir);
  }
  if (spec.par.enabled() && spec.par.mode == parallel::ParMode::kLax) {
    h.update(std::string("par-lax"));
    h.update_u32(spec.par.shards);
    h.update_u64(spec.par.slack);
  }
  // The cell's own seeds: replicate seeds depend on (base_seed, workload
  // index), so a base-seed or derivation change invalidates every cell.
  for (std::uint32_t r = 0; r < spec.replicates; ++r) {
    h.update_u64(job_seed(spec.base_seed, static_cast<std::uint32_t>(w), r));
  }
  return h.digest();
}

void ShardSpec::validate() const {
  if (count == 0 || index == 0 || index > count) {
    throw std::invalid_argument("invalid shard " + std::to_string(index) +
                                "/" + std::to_string(count) +
                                " (want 1 <= K <= N)");
  }
  for (const std::uint32_t owner : assignment) {
    if (owner == 0 || owner > count) {
      throw std::invalid_argument(
          "shard assignment names shard " + std::to_string(owner) +
          " outside 1.." + std::to_string(count));
    }
  }
}

std::vector<std::uint32_t> plan_shards(const std::vector<double>& cell_costs,
                                       std::uint32_t shard_count) {
  if (cell_costs.empty()) {
    throw std::invalid_argument("plan_shards: no cells to assign");
  }
  if (shard_count == 0) {
    throw std::invalid_argument("plan_shards: shard count must be positive");
  }
  // Greedy LPT: visit cells heaviest-first (ties by index, so the plan is a
  // pure function of the cost vector), give each to the least-loaded shard
  // (ties to the lowest shard index).
  std::vector<std::uint64_t> order(cell_costs.size());
  for (std::uint64_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              if (cell_costs[a] != cell_costs[b]) {
                return cell_costs[a] > cell_costs[b];
              }
              return a < b;
            });
  std::vector<double> load(shard_count, 0.0);
  std::vector<std::uint32_t> owner(cell_costs.size(), 0);
  for (const std::uint64_t cell : order) {
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < shard_count; ++s) {
      if (load[s] < load[best]) best = s;
    }
    owner[cell] = best + 1;  // 1-based, the --shard K/N notation.
    load[best] += std::max(cell_costs[cell], 0.0);
  }
  return owner;
}

std::vector<double> cell_costs_from_journal(const SweepSpec& spec,
                                            const std::string& journal_path) {
  validate_axes(spec);
  const std::uint64_t job_count = spec.job_count();
  Journal journal = Journal::open_read(journal_path);
  if (journal.meta().job_count != job_count) {
    throw std::runtime_error(
        "journal " + journal_path + ": records " +
        std::to_string(journal.meta().job_count) + " jobs but the spec has " +
        std::to_string(job_count) + " — cost model needs the same grid shape");
  }
  // Last record wins, like resume; failures and damaged payloads leave the
  // job unmeasured (they carry no wall clock).
  std::vector<std::optional<JournalEntry>> last(job_count);
  for (const JournalEntry& entry : journal.index().entries) {
    if (entry.job_index >= job_count) continue;
    last[entry.job_index] = entry;
  }
  std::vector<double> job_cost(job_count, -1.0);
  double total = 0.0;
  std::uint64_t measured = 0;
  for (std::uint64_t j = 0; j < job_count; ++j) {
    if (!last[j] || !last[j]->payload_ok || last[j]->failed) continue;
    core::RunResult result;
    try {
      result = journal.read_payload(*last[j]);
    } catch (const std::exception&) {
      continue;  // Corrupt payload: job is unmeasured, not fatal.
    }
    if (result.wall_ns == 0) continue;  // Journaled before timing existed.
    job_cost[j] = static_cast<double>(result.wall_ns);
    total += job_cost[j];
    ++measured;
  }
  // Holes take the mean measured job cost so a missing job never zeroes its
  // cell (and a journal with no timing at all degrades to uniform costs).
  const double mean = measured > 0 ? total / static_cast<double>(measured) : 1.0;
  std::vector<double> costs(spec.cell_count(), 0.0);
  for (std::uint64_t j = 0; j < job_count; ++j) {
    costs[j / spec.replicates] += job_cost[j] >= 0.0 ? job_cost[j] : mean;
  }
  return costs;
}

std::uint64_t retry_backoff_ms(std::uint32_t base_ms, std::uint32_t attempt,
                               std::uint64_t job_index) {
  if (base_ms == 0 || attempt == 0) return 0;
  const std::uint64_t base = static_cast<std::uint64_t>(base_ms)
                             << (attempt - 1);
  // Deterministic jitter from the job coordinate: simultaneous failures
  // across jobs (or service requests) spread instead of retrying in
  // lockstep, while the same run reproduces the same schedule.
  SplitMix64 rng(job_index * 0x9e3779b97f4a7c15ull + attempt);
  return base + rng.next() % (base_ms / 2 + 1);
}

// ------------------------------------------------------------- SweepResult ----

const CellResult* SweepResult::find(const std::string& workload,
                                    const std::string& config_label,
                                    DirectoryMode mode) const {
  for (const auto& cell : cells) {
    if (cell.workload == workload && cell.config_label == config_label &&
        cell.mode == mode) {
      return &cell;
    }
  }
  return nullptr;
}

core::PairResult SweepResult::pair(const std::string& workload,
                                   const std::string& config_label,
                                   std::uint32_t replicate) const {
  const CellResult* base = find(workload, config_label, DirectoryMode::kBaseline);
  const CellResult* allarm = find(workload, config_label, DirectoryMode::kAllarm);
  if (base == nullptr || allarm == nullptr) {
    throw std::out_of_range("sweep has no baseline/ALLARM pair for " +
                            workload + "/" + config_label);
  }
  core::PairResult pair;
  pair.baseline = base->runs.at(replicate);
  pair.allarm = allarm->runs.at(replicate);
  return pair;
}

std::vector<Job> expand_jobs(const SweepSpec& spec) {
  const WorkloadFactory factory =
      spec.make_workload
          ? spec.make_workload
          : [](const std::string& name, const SystemConfig& config,
               std::uint64_t accesses) {
              return workload::make_benchmark(name, config, accesses);
            };
  std::vector<Job> jobs;
  jobs.reserve(spec.job_count());
  for (std::uint32_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::uint32_t c = 0; c < spec.configs.size(); ++c) {
      const ConfigPoint& point = spec.configs[c];
      // The workload layout depends only on the machine geometry, which is
      // identical for both directory modes — build it once per (w, c).
      const workload::WorkloadSpec workload_spec = factory(
          spec.workloads[w], point.config, spec.accesses_per_thread);
      for (std::uint32_t m = 0; m < spec.modes.size(); ++m) {
        for (std::uint32_t r = 0; r < spec.replicates; ++r) {
          Job job;
          job.coord = JobCoord{w, c, m, r};
          job.request.config = point.config;
          job.request.mode = spec.modes[m];
          job.request.spec = workload_spec;
          job.request.seed = job_seed(spec.base_seed, w, r);
          job.request.policy = point.policy;
          job.request.par = spec.par;
          job.request.profile = spec.profile;
          // Traces pair with jobs by grid index (== jobs.size() here:
          // the loops enumerate the grid in order), so a capture run's
          // directory replays positionally under the same spec.
          if (!spec.capture_dir.empty()) {
            job.request.capture_trace = spec.capture_dir + "/job-" +
                                        std::to_string(jobs.size()) + ".altr";
          }
          if (!spec.replay_dir.empty()) {
            job.request.replay_trace = spec.replay_dir + "/job-" +
                                       std::to_string(jobs.size()) + ".altr";
          }
          jobs.push_back(std::move(job));
        }
      }
    }
  }
  return jobs;
}

// -------------------------------------------------------------- SweepRunner ----

SweepRunner::SweepRunner(std::uint32_t jobs)
    : jobs_(jobs > 0 ? jobs : core::bench_jobs()) {}

SweepResult SweepRunner::run(const SweepSpec& spec) const {
  SweepResult out;
  CollectSink sink(out);
  const StreamStats stats = run_streaming(spec, sink);
  out.jobs_used = stats.jobs_used;
  out.tasks_stolen = stats.tasks_stolen;
  out.wall_seconds = stats.wall_seconds;
  return out;
}

StreamStats SweepRunner::run_streaming(const SweepSpec& spec, ResultSink& sink,
                                       const StreamOptions& options) const {
  validate_axes(spec);
  options.shard.validate();
  if ((options.resume || options.resume_cells) &&
      options.journal_path.empty()) {
    throw std::invalid_argument("resume requires a journal path");
  }
  if (options.resume_cells && options.shard.count != 1) {
    // A spec edit can change any cell, and stale records would be stranded
    // in whichever shard's journal round-robin (or a cost plan) previously
    // assigned them — per-cell resume is a single-journal operation.
    throw std::invalid_argument(
        "per-cell incremental resume requires an unsharded sweep");
  }
  if (options.stop != nullptr && options.journal_path.empty()) {
    throw std::invalid_argument(
        "a drainable run requires a journal (drain checkpoints into it)");
  }
  const auto start = std::chrono::steady_clock::now();

  const std::vector<Job> jobs = expand_jobs(spec);
  const std::vector<std::uint64_t> owned =
      owned_job_indices(spec, options.shard);

  StreamStats stats;
  stats.jobs_total = owned.size();

  // The journal, and the already-done jobs a resume replays from it.
  std::optional<Journal> journal;
  std::unordered_map<std::uint64_t, JournalEntry> resumed;
  // Per-cell identity hashes, stamped into every journaled payload so a
  // later per-cell resume can tell live records from stale ones.
  std::vector<std::uint64_t> cell_hashes;
  if (!options.journal_path.empty()) {
    cell_hashes.resize(spec.cell_count());
    for (std::uint64_t cell = 0; cell < cell_hashes.size(); ++cell) {
      cell_hashes[cell] = cell_hash(spec, cell);
    }
    JournalMeta meta;
    meta.spec_hash = spec_hash(spec);
    meta.job_count = jobs.size();
    meta.base_seed = spec.base_seed;
    meta.shard_index = options.shard.index;
    meta.shard_count = options.shard.count;
    const bool exists = file_exists(options.journal_path);
    if (!options.resume && !options.resume_cells && exists) {
      // Never silently truncate journaled work — it is exactly the data
      // the journal exists to protect.
      throw std::runtime_error(
          "journal " + options.journal_path +
          " already exists; resume it (--resume) or delete it to start "
          "fresh");
    }
    if (options.resume_cells && exists) {
      // Incremental re-sweep: rebind the journal to this spec's identity
      // and keep exactly the records whose cell definition is unchanged.
      // Stale records (edited cell, changed seed, broken payload) are
      // simply not-done — the re-run appends supersede them.
      journal.emplace(Journal::open_rebind(options.journal_path, meta));
      for (const JournalEntry& entry : journal->index().entries) {
        if (entry.job_index >= jobs.size()) continue;
        if (!entry.payload_ok) continue;
        if (entry.failed) {
          resumed.erase(entry.job_index);
          continue;
        }
        if (entry.seed != jobs[entry.job_index].request.seed) {
          resumed.erase(entry.job_index);
          continue;
        }
        std::uint64_t recorded = 0;
        try {
          journal->read_payload(entry, &recorded);
        } catch (const std::exception&) {
          resumed.erase(entry.job_index);
          continue;
        }
        if (recorded != cell_hashes[entry.job_index / spec.replicates]) {
          resumed.erase(entry.job_index);  // Pre-stamping (0) is also stale.
          continue;
        }
        resumed[entry.job_index] = entry;  // Last wins.
      }
    } else if (options.resume && exists) {
      journal.emplace(Journal::open_resume(options.journal_path, meta));
      for (const JournalEntry& entry : journal->index().entries) {
        check_entry_seed(options.journal_path, entry, jobs);
        if (!options.shard.owns_cell(entry.job_index / spec.replicates)) {
          throw std::runtime_error("journal " + options.journal_path +
                                   ": records job " +
                                   std::to_string(entry.job_index) +
                                   " outside this shard");
        }
        if (!entry.payload_ok) continue;
        if (entry.failed) {
          // A quarantined job is not done — the resume re-runs it (and a
          // success it journals supersedes the failure, last-record-wins).
          resumed.erase(entry.job_index);
        } else {
          resumed[entry.job_index] = entry;  // Last wins.
        }
      }
    } else {
      journal.emplace(Journal::create(options.journal_path, meta));
    }
  }

  // Completion plumbing must outlive the pool: if a sink throws mid-sweep,
  // the pool's destructor still drains in-flight jobs, which push here.
  // A job that throws (e.g. a missing/corrupt --replay trace) parks its
  // exception instead of a result — letting it escape on a pool worker
  // would std::terminate the process instead of the documented
  // std::runtime_error -> nonzero-exit error path.
  struct Completion {
    std::uint64_t job_index = 0;
    core::RunResult result;
    std::uint32_t attempts = 1;  ///< Execution attempts, including retries.
    bool failed = false;         ///< Every attempt threw.
    std::string error_text;      ///< what() of the last attempt's exception.
    std::exception_ptr error;    ///< Same exception, for the rethrow path.
  };
  std::mutex mutex;
  std::condition_variable done_cv;
  std::vector<Completion> completed;
  // Pool tasks whose lambda has not yet finished.  With a shared pool the
  // pool outlives this call, so returning (or unwinding) while a task still
  // references these stack locals would be use-after-return — the guard
  // below waits for live == 0 on every exit path.  Tasks decrement and
  // notify UNDER the mutex, so the guard cannot miss the last wakeup.
  std::size_t live = 0;

  // A par-sharded sweep splits the host thread budget between concurrent
  // jobs and per-job shard work (parallel::split_budget): the lane merge
  // and flush cost per job scales with shards, so jobs x shards stays
  // within the --jobs budget instead of multiplying past it.  A shared
  // pool (the sweep service multiplexing requests) overrides the private
  // one; it only schedules — the fold below is grid-ordered either way.
  std::optional<ThreadPool> owned_pool;
  if (options.pool == nullptr) {
    owned_pool.emplace(parallel::split_budget(jobs_, spec.par.shards));
  }
  ThreadPool& pool = options.pool != nullptr ? *options.pool : *owned_pool;

  struct LiveGuard {
    std::mutex& mutex;
    std::condition_variable& cv;
    const std::size_t& live;
    ~LiveGuard() {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return live == 0; });
    }
  } live_guard{mutex, done_cv, live};

  const std::size_t window =
      options.max_outstanding > 0
          ? options.max_outstanding
          : std::max<std::size_t>(16, std::size_t{4} * pool.worker_count());

  sink.begin(meta_of(spec));
  CellFolder folder(spec, jobs, sink);

  // In-flight bookkeeping, all owned by this (the folding) thread.
  std::map<std::uint64_t, JobOutcome> resident;  // Done, not yet folded.
  std::size_t next = 0;          // Next owned[] position to issue.
  std::size_t fold_pos = 0;      // Next owned[] position to fold.
  std::size_t outstanding = 0;   // Issued but not yet folded.
  std::size_t inflight = 0;      // On the pool, completion not yet processed.
  // Drain mode (StreamOptions::stop): stop issuing, journal what was
  // already issued, leave the rest for a resume.
  bool draining = false;

  const auto note_peak = [&] {
    const std::size_t now = resident.size() + folder.partial_fill();
    if (now > stats.peak_resident_results) stats.peak_resident_results = now;
  };

  while (fold_pos < owned.size()) {
    if (!draining && options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      draining = true;
    }
    // Issue jobs while the outstanding window has room.  Journaled jobs
    // replay straight into `resident`; fresh jobs go to the pool.
    while (!draining && next < owned.size() && outstanding < window) {
      const std::uint64_t job_index = owned[next];
      ++next;
      ++outstanding;
      const auto it = resumed.find(job_index);
      if (it != resumed.end()) {
        JobOutcome outcome;
        outcome.result = journal->read_payload(it->second);
        resident.emplace(job_index, std::move(outcome));
        ++stats.jobs_resumed;
        note_peak();
      } else {
        const Job& job = jobs[job_index];
        // Self-healing execution: a job that throws is retried with
        // bounded exponential backoff.  Retries are safe to the byte —
        // jobs are pure functions of their RunRequest, so a retried job
        // reproduces exactly what the failed attempt would have produced.
        // Two failpoints make faults schedulable under any worker count:
        // `cell.attempt` counts attempts process-wide (transient faults
        // that heal on retry); `cell.job` matches the grid-order job index
        // (permanent faults pinned to a cell regardless of scheduling).
        const std::uint32_t max_attempts = options.cell_retries + 1;
        const std::uint32_t backoff_ms = options.retry_backoff_ms;
        const std::uint64_t deadline_ns = options.cell_timeout_ns;
        {
          std::lock_guard<std::mutex> lock(mutex);
          ++live;  // Paired with the task's decrement; see LiveGuard.
        }
        try {
          pool.submit([&job, job_index, max_attempts, backoff_ms, deadline_ns,
                       &mutex, &done_cv, &completed, &live] {
            Completion done;
            done.job_index = job_index;
            for (std::uint32_t attempt = 1;; ++attempt) {
              done.attempts = attempt;
              try {
                if (attempt > 1 && backoff_ms > 0) {
                  std::this_thread::sleep_for(std::chrono::milliseconds(
                      retry_backoff_ms(backoff_ms, attempt - 1, job_index)));
                }
                if (const auto hit =
                        failpoint::check_indexed("cell.job", job_index)) {
                  if (hit.action == failpoint::Action::kDelay) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(hit.arg));
                  } else {
                    throw std::runtime_error(
                        "job " + std::to_string(job_index) +
                        ": injected fault (failpoint cell.job)");
                  }
                }
                if (const auto hit = failpoint::check("cell.attempt")) {
                  if (hit.action == failpoint::Action::kDelay) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(hit.arg));
                  } else {
                    throw std::runtime_error(
                        "job " + std::to_string(job_index) +
                        ": injected fault (failpoint cell.attempt)");
                  }
                }
                {
                  OBS_SPAN_N("sweep.job", "sweep", job_index);
                  done.result = core::run_request(job.request, deadline_ns);
                }
                done.failed = false;
                break;
              } catch (const std::exception& e) {
                done.failed = true;
                done.error_text = e.what();
                done.error = std::current_exception();
              } catch (...) {
                done.failed = true;
                done.error_text = "unknown exception";
                done.error = std::current_exception();
              }
              if (attempt >= max_attempts) break;
            }
            {
              // Push, decrement and notify under one lock: once `live` hits
              // zero with the mutex released, this task touches no capture
              // again, so the LiveGuard's wakeup cannot race destruction.
              std::lock_guard<std::mutex> lock(mutex);
              completed.push_back(std::move(done));
              --live;
              done_cv.notify_all();
            }
          });
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          --live;
          throw;
        }
        ++stats.jobs_executed;
        ++inflight;
      }
    }

    // Draining and nothing left on the pool: every issued job has been
    // collected and journaled — checkpoint and leave.
    if (draining && inflight == 0) break;

    // Collect finished jobs.  Block only when neither issuing nor folding
    // can make progress — then some pool job is still running and its
    // completion is the only possible next event.
    std::vector<Completion> batch;
    {
      std::unique_lock<std::mutex> lock(mutex);
      if (completed.empty()) {
        const bool can_issue =
            !draining && next < owned.size() && outstanding < window;
        const bool can_fold =
            fold_pos < owned.size() && resident.count(owned[fold_pos]) > 0;
        if (!can_issue && !can_fold) {
          done_cv.wait(lock, [&] { return !completed.empty(); });
        }
      }
      batch.swap(completed);
    }
    for (Completion& done : batch) {
      --inflight;
      stats.jobs_retried += done.attempts - 1;
      const std::uint64_t seed = jobs[done.job_index].request.seed;
      const std::uint64_t done_cell_hash =
          journal ? cell_hashes[done.job_index / spec.replicates] : 0;
      if (done.failed) {
        // Out of retries.  Without quarantine, rethrow on this (the
        // folding) thread, where callers expect sweep errors to surface —
        // in-flight jobs drain through the pool destructor and their
        // completions are simply dropped.  While draining, a failure is
        // not an error: the job simply stays not-done and the resume
        // re-runs it.  With quarantine, the failure becomes data:
        // journaled (so a resume re-runs the job) and folded into the
        // cell's `failed` section so the rest of the sweep completes.
        if (!options.quarantine) {
          if (draining) continue;
          std::rethrow_exception(done.error);
        }
        ++stats.jobs_failed;
        FailureRecord failure;
        failure.attempts = done.attempts;
        failure.error = done.error_text;
        if (journal) journal->append_failed(done.job_index, seed, failure);
        JobOutcome outcome;
        outcome.failed = true;
        outcome.attempts = done.attempts;
        outcome.error = std::move(done.error_text);
        resident.emplace(done.job_index, std::move(outcome));
      } else {
        if (journal) {
          journal->append(done.job_index, seed, done.result, done_cell_hash);
        }
        JobOutcome outcome;
        outcome.result = std::move(done.result);
        outcome.attempts = done.attempts;
        resident.emplace(done.job_index, std::move(outcome));
      }
    }
    note_peak();

    // Fold the contiguous completed prefix, in grid order.
    while (fold_pos < owned.size()) {
      const auto it = resident.find(owned[fold_pos]);
      if (it == resident.end()) break;
      JobOutcome outcome = std::move(it->second);
      resident.erase(it);
      folder.fold(owned[fold_pos], std::move(outcome));
      ++fold_pos;
      --outstanding;
    }
    if (options.progress != nullptr) {
      options.progress->store(static_cast<std::uint64_t>(fold_pos),
                              std::memory_order_relaxed);
    }
  }

  if (draining) {
    // Checkpoint: every issued completion is journaled; make it durable.
    // The sink never sees end-of-stream — its output is torn by design
    // (the caller discards it and resumes the journal later).
    journal->sync();
    journal->close();
    stats.drained = true;
    stats.jobs_used = pool.worker_count();
    stats.tasks_stolen = pool.steal_count();
    stats.cells_emitted = folder.cells_emitted();
    stats.cells_failed = folder.cells_failed();
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return stats;
  }

  if (owned_pool) {
    owned_pool->wait_idle();  // All owned jobs folded: returns immediately.
  }
  sink.end();
  if (journal) journal->close();

  stats.jobs_used = pool.worker_count();
  stats.tasks_stolen = pool.steal_count();
  stats.cells_emitted = folder.cells_emitted();
  stats.cells_failed = folder.cells_failed();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

// ----------------------------------------------------------- journal merge ----

StreamStats merge_journals(const SweepSpec& spec,
                           const std::vector<std::string>& journal_paths,
                           ResultSink& sink) {
  validate_axes(spec);
  if (journal_paths.empty()) {
    throw std::invalid_argument("merge needs at least one journal");
  }
  const auto start = std::chrono::steady_clock::now();

  const std::vector<Job> jobs = expand_jobs(spec);
  const std::uint64_t expected_hash = spec_hash(spec);

  std::vector<Journal> journals;
  journals.reserve(journal_paths.size());
  // where[job] = (journal position, entry) of the winning record.
  std::vector<std::optional<std::pair<std::size_t, JournalEntry>>> where(
      jobs.size());

  for (std::size_t j = 0; j < journal_paths.size(); ++j) {
    const std::string& path = journal_paths[j];
    Journal journal = Journal::open_read(path);
    const JournalMeta& meta = journal.meta();
    if (meta.spec_hash != expected_hash) {
      throw std::runtime_error("journal " + path +
                               ": spec hash mismatch — it records a "
                               "different sweep than the one being merged");
    }
    if (meta.job_count != jobs.size() || meta.base_seed != spec.base_seed) {
      throw std::runtime_error("journal " + path +
                               ": grid shape or base seed mismatch");
    }
    for (const JournalEntry& entry : journal.index().entries) {
      if (!entry.payload_ok) continue;  // Damaged payload: job is missing.
      // Quarantine records participate like results: an unsuperseded
      // failure folds into the report's `failed` section below (it is a
      // recorded outcome, not a missing job), and a later success record
      // in the same journal supersedes it via last-record-wins.
      check_entry_seed(path, entry, jobs);
      auto& slot = where[entry.job_index];
      if (slot && slot->first != j) {
        throw std::runtime_error(
            "journals " + journal_paths[slot->first] + " and " + path +
            " overlap at job " + std::to_string(entry.job_index) +
            " — shards must partition the grid");
      }
      slot = std::make_pair(j, entry);  // Within one journal, last wins.
    }
    journals.push_back(std::move(journal));
  }

  std::uint64_t missing = 0;
  for (const auto& slot : where) {
    if (!slot) ++missing;
  }
  if (missing > 0) {
    throw std::runtime_error(
        "merge is incomplete: " + std::to_string(missing) + " of " +
        std::to_string(jobs.size()) +
        " jobs appear in no journal (did every shard finish?)");
  }

  StreamStats stats;
  stats.jobs_total = jobs.size();
  stats.jobs_resumed = jobs.size();

  sink.begin(meta_of(spec));
  CellFolder folder(spec, jobs, sink);
  for (std::uint64_t job_index = 0; job_index < jobs.size(); ++job_index) {
    const auto& [journal_pos, entry] = *where[job_index];
    JobOutcome outcome;
    if (entry.failed) {
      FailureRecord failure = journals[journal_pos].read_failure(entry);
      outcome.failed = true;
      outcome.attempts = failure.attempts;
      outcome.error = std::move(failure.error);
      ++stats.jobs_failed;
    } else {
      outcome.result = journals[journal_pos].read_payload(entry);
    }
    folder.fold(job_index, std::move(outcome));
    const std::size_t now = folder.partial_fill();
    if (now > stats.peak_resident_results) stats.peak_resident_results = now;
  }
  sink.end();

  stats.cells_emitted = folder.cells_emitted();
  stats.cells_failed = folder.cells_failed();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace allarm::runner
