#include "runner/report.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace allarm::runner {

namespace {

void append_summary_json(std::ostringstream& out, const Summary& s) {
  out << "{\"count\":" << s.count << ",\"mean\":" << json_number(s.mean)
      << ",\"stddev\":" << json_number(s.stddev())
      << ",\"min\":" << json_number(s.min)
      << ",\"max\":" << json_number(s.max) << "}";
}

void append_summary_csv(std::ostringstream& out, const Summary& s) {
  out << s.count << ',' << json_number(s.mean) << ','
      << json_number(s.stddev()) << ',' << json_number(s.min) << ','
      << json_number(s.max);
}

}  // namespace

std::string to_json(const SweepResult& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"sweep\": " << json_quote(result.name) << ",\n";
  out << "  \"base_seed\": " << result.base_seed << ",\n";
  out << "  \"replicates\": " << result.replicates << ",\n";
  out << "  \"accesses_per_thread\": " << result.accesses_per_thread << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& cell = result.cells[i];
    out << "    {\n";
    out << "      \"workload\": " << json_quote(cell.workload) << ",\n";
    out << "      \"config\": " << json_quote(cell.config_label) << ",\n";
    out << "      \"mode\": " << json_quote(to_string(cell.mode)) << ",\n";
    out << "      \"seeds\": [";
    for (std::size_t s = 0; s < cell.seeds.size(); ++s) {
      if (s > 0) out << ",";
      out << cell.seeds[s];
    }
    out << "],\n";
    out << "      \"runtime\": ";
    append_summary_json(out, cell.runtime);
    out << ",\n";
    out << "      \"stats\": {";
    bool first = true;
    for (const auto& [name, summary] : cell.stats) {
      if (!first) out << ",";
      first = false;
      out << "\n        " << json_quote(name) << ": ";
      append_summary_json(out, summary);
    }
    if (!cell.stats.empty()) out << "\n      ";
    out << "}\n";
    out << "    }" << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string to_csv(const SweepResult& result) {
  std::ostringstream out;
  out << "sweep,workload,config,mode,metric,count,mean,stddev,min,max\n";
  for (const CellResult& cell : result.cells) {
    const std::string prefix = result.name + "," + cell.workload + "," +
                               cell.config_label + "," + to_string(cell.mode) +
                               ",";
    out << prefix << "runtime,";
    append_summary_csv(out, cell.runtime);
    out << "\n";
    for (const auto& [name, summary] : cell.stats) {
      out << prefix << name << ',';
      append_summary_csv(out, summary);
      out << "\n";
    }
  }
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("cannot open " + path + " for writing");
  file << content;
  if (!file) throw std::runtime_error("failed writing " + path);
}

}  // namespace allarm::runner
