#include "runner/report.hh"

#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/failpoint.hh"
#include "common/fileio.hh"

namespace allarm::runner {

namespace {

void append_summary_json(std::ostream& out, const Summary& s) {
  out << "{\"count\":" << s.count << ",\"mean\":" << json_number(s.mean)
      << ",\"stddev\":" << json_number(s.stddev())
      << ",\"min\":" << json_number(s.min)
      << ",\"max\":" << json_number(s.max) << "}";
}

void append_summary_csv(std::ostream& out, const Summary& s) {
  out << s.count << ',' << json_number(s.mean) << ','
      << json_number(s.stddev()) << ',' << json_number(s.min) << ','
      << json_number(s.max);
}

[[noreturn]] void io_failure(const std::string& label) {
  throw std::runtime_error("failed writing " + label +
                           " (stream went bad; disk full or closed?)");
}

/// Per-cell failpoint shared by both writers: exercises the callers'
/// mid-report error paths (a half-written report followed by a nonzero
/// exit, never a silently truncated "success").
void check_sink_failpoint(const std::string& label) {
  if (failpoint::check("sink.write")) {
    throw std::runtime_error("failed writing " + label +
                             ": injected fault (failpoint sink.write)");
  }
}

/// Streams one sweep result through `sink` (begin / cells / end).  The
/// per-cell copies omit the raw `runs` — they dominate the cell footprint
/// and the report writers this feeds never serialize them.
void replay(const SweepResult& result, ResultSink& sink) {
  SweepMeta meta;
  meta.name = result.name;
  meta.base_seed = result.base_seed;
  meta.replicates = result.replicates;
  meta.accesses_per_thread = result.accesses_per_thread;
  sink.begin(meta);
  for (const CellResult& cell : result.cells) {
    sink.cell(cell.summary_copy());
  }
  sink.end();
}

}  // namespace

// ------------------------------------------------------------------ JSON ----

JsonStreamSink::JsonStreamSink(std::ostream& out, std::string label)
    : out_(out), label_(std::move(label)) {}

void JsonStreamSink::check() const {
  if (!out_.good()) io_failure(label_);
}

void JsonStreamSink::begin(const SweepMeta& meta) {
  out_ << "{\n";
  out_ << "  \"sweep\": " << json_quote(meta.name) << ",\n";
  out_ << "  \"base_seed\": " << meta.base_seed << ",\n";
  out_ << "  \"replicates\": " << meta.replicates << ",\n";
  out_ << "  \"accesses_per_thread\": " << meta.accesses_per_thread << ",\n";
  out_ << "  \"cells\": [\n";
  check();
}

void JsonStreamSink::cell(CellResult&& cell) {
  check_sink_failpoint(label_);
  if (any_cell_) out_ << ",\n";
  any_cell_ = true;
  out_ << "    {\n";
  out_ << "      \"workload\": " << json_quote(cell.workload) << ",\n";
  out_ << "      \"config\": " << json_quote(cell.config_label) << ",\n";
  out_ << "      \"mode\": " << json_quote(to_string(cell.mode)) << ",\n";
  out_ << "      \"seeds\": [";
  for (std::size_t s = 0; s < cell.seeds.size(); ++s) {
    if (s > 0) out_ << ",";
    out_ << cell.seeds[s];
  }
  out_ << "],\n";
  out_ << "      \"runtime\": ";
  append_summary_json(out_, cell.runtime);
  out_ << ",\n";
  if (include_timing_) {
    out_ << "      \"wall_ns\": ";
    append_summary_json(out_, cell.wall_ns);
    out_ << ",\n";
  }
  out_ << "      \"stats\": {";
  bool first = true;
  for (const auto& [name, summary] : cell.stats) {
    if (!first) out_ << ",";
    first = false;
    out_ << "\n        " << json_quote(name) << ": ";
    append_summary_json(out_, summary);
  }
  if (!cell.stats.empty()) out_ << "\n      ";
  out_ << "}";
  // Latency-profile quantiles (sweep --profile).  Doubly gated — the sink
  // mode AND non-empty cell histograms — so a profile-less resume of a
  // profiled journal degrades to omitting the section, never to emitting
  // an empty one.
  if (include_profile_ && !cell.profile.empty()) {
    out_ << ",\n      \"hist\": {";
    bool first_hist = true;
    for (const auto& [name, hist] : cell.profile) {
      if (!first_hist) out_ << ",";
      first_hist = false;
      out_ << "\n        " << json_quote(name) << ": {\"p50\":"
           << json_number(hist.quantile(0.50))
           << ",\"p95\":" << json_number(hist.quantile(0.95))
           << ",\"p99\":" << json_number(hist.quantile(0.99))
           << ",\"max\":" << json_number(static_cast<double>(hist.max()))
           << ",\"count\":" << hist.count() << "}";
    }
    out_ << "\n      }";
  }
  // Quarantined replicates.  Emitted only when present so a healthy
  // sweep's report stays byte-identical to one written before quarantine
  // existed.
  if (!cell.failures.empty()) {
    out_ << ",\n      \"failed\": [";
    for (std::size_t f = 0; f < cell.failures.size(); ++f) {
      const CellFailure& failure = cell.failures[f];
      if (f > 0) out_ << ",";
      out_ << "\n        {\"replicate\":" << failure.replicate
           << ",\"attempts\":" << failure.attempts
           << ",\"error\":" << json_quote(failure.error) << "}";
    }
    out_ << "\n      ]";
  }
  out_ << "\n";
  out_ << "    }";
  check();
}

void JsonStreamSink::end() {
  if (any_cell_) out_ << "\n";
  out_ << "  ]\n";
  out_ << "}\n";
  out_.flush();
  check();
}

// ------------------------------------------------------------------- CSV ----

CsvStreamSink::CsvStreamSink(std::ostream& out, std::string label)
    : out_(out), label_(std::move(label)) {}

void CsvStreamSink::check() const {
  if (!out_.good()) io_failure(label_);
}

void CsvStreamSink::begin(const SweepMeta& meta) {
  sweep_name_ = meta.name;
  out_ << "sweep,workload,config,mode,metric,count,mean,stddev,min,max\n";
  check();
}

void CsvStreamSink::cell(CellResult&& cell) {
  check_sink_failpoint(label_);
  const std::string prefix = sweep_name_ + "," + cell.workload + "," +
                             cell.config_label + "," + to_string(cell.mode) +
                             ",";
  out_ << prefix << "runtime,";
  append_summary_csv(out_, cell.runtime);
  out_ << "\n";
  // Quarantined replicates, column-stable: a `failed` metric row
  // summarizing the attempt counts (count = failed replicates).  Error
  // strings do not fit CSV columns — the JSON report carries them.
  // Omitted entirely for healthy cells so their bytes never change.
  if (!cell.failures.empty()) {
    Summary attempts;
    for (const CellFailure& failure : cell.failures) {
      attempts.add(static_cast<double>(failure.attempts));
    }
    out_ << prefix << "failed,";
    append_summary_csv(out_, attempts);
    out_ << "\n";
  }
  for (const auto& [name, summary] : cell.stats) {
    out_ << prefix << name << ',';
    append_summary_csv(out_, summary);
    out_ << "\n";
  }
  check();
}

void CsvStreamSink::end() {
  out_.flush();
  check();
}

// -------------------------------------------------------------- wrappers ----

std::string to_json(const SweepResult& result) {
  std::ostringstream out;
  JsonStreamSink sink(out, "in-memory JSON");
  replay(result, sink);
  return out.str();
}

std::string to_csv(const SweepResult& result) {
  std::ostringstream out;
  CsvStreamSink sink(out, "in-memory CSV");
  replay(result, sink);
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  write_file_durable(path, content);
}

// ----------------------------------------------------------- ReportFiles ----

namespace {

std::ofstream open_tmp(const std::string& path) {
  std::ofstream file(path + ".tmp", std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("cannot open " + path + ".tmp for writing");
  }
  return file;
}

void close_and_rename(std::ofstream& file, const std::string& path) {
  file.close();
  if (!file) throw std::runtime_error("failed closing " + path + ".tmp");
  {
    // fsync before the rename: without it, a power loss after the rename
    // could replace a good previous report with a partial one.
    File tmp(path + ".tmp", File::Mode::kReadWrite);
    tmp.sync();
    tmp.close();
  }
  if (std::rename((path + ".tmp").c_str(), path.c_str()) != 0) {
    throw std::runtime_error("failed renaming " + path + ".tmp into place");
  }
}

}  // namespace

ReportFiles::ReportFiles(const std::string& json_path,
                         const std::string& csv_path, bool include_timing,
                         bool include_profile)
    : json_path_(json_path), csv_path_(csv_path) {
  std::vector<ResultSink*> all;
  if (json_path_.empty()) {
    json_ = std::make_unique<JsonStreamSink>(std::cout, "stdout");
  } else {
    out_file_ = open_tmp(json_path_);
    json_ = std::make_unique<JsonStreamSink>(out_file_, json_path_);
  }
  json_->set_include_timing(include_timing);
  json_->set_include_profile(include_profile);
  all.push_back(json_.get());
  if (!csv_path_.empty()) {
    csv_file_ = open_tmp(csv_path_);
    csv_ = std::make_unique<CsvStreamSink>(csv_file_, csv_path_);
    all.push_back(csv_.get());
  }
  tee_ = TeeSink(all);
}

ReportFiles::~ReportFiles() {
  try {
    discard();
  } catch (...) {
    // Destructor cleanup is best effort; commit() is the throwing path.
  }
}

void ReportFiles::commit() {
  if (done_) return;
  done_ = true;
  if (out_file_.is_open()) close_and_rename(out_file_, json_path_);
  if (csv_file_.is_open()) close_and_rename(csv_file_, csv_path_);
}

void ReportFiles::discard() {
  if (done_) return;
  done_ = true;
  if (out_file_.is_open()) {
    out_file_.close();
    std::remove((json_path_ + ".tmp").c_str());
  }
  if (csv_file_.is_open()) {
    csv_file_.close();
    std::remove((csv_path_ + ".tmp").c_str());
  }
}

}  // namespace allarm::runner
