#include "runner/sink.hh"

namespace allarm::runner {

void CollectSink::begin(const SweepMeta& meta) {
  out_.name = meta.name;
  out_.base_seed = meta.base_seed;
  out_.replicates = meta.replicates;
  out_.accesses_per_thread = meta.accesses_per_thread;
  out_.cells.clear();
}

void CollectSink::cell(CellResult&& cell) {
  if (retain_ == Retain::kFirstRunOnly && cell.runs.size() > 1) {
    cell.runs.resize(1);
    cell.runs.shrink_to_fit();
  }
  out_.cells.push_back(std::move(cell));
}

void TeeSink::begin(const SweepMeta& meta) {
  for (ResultSink* sink : sinks_) sink->begin(meta);
}

void TeeSink::cell(CellResult&& cell) {
  if (sinks_.empty()) return;
  // Only the last sink may take ownership of the raw runs (see the header
  // contract); the earlier fan-out arms get the cheap runs-less copy.
  for (std::size_t i = 0; i + 1 < sinks_.size(); ++i) {
    sinks_[i]->cell(cell.summary_copy());
  }
  sinks_.back()->cell(std::move(cell));
}

void TeeSink::end() {
  for (ResultSink* sink : sinks_) sink->end();
}

}  // namespace allarm::runner
