#include "obs/timeline.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "common/failpoint.hh"
#include "common/fileio.hh"
#include "common/log.hh"
#include "common/stats.hh"

namespace allarm::obs {

namespace {

struct Span {
  const char* name;
  const char* cat;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint64_t arg;
};

/// One thread's span ring.  The owning thread is the only writer; the
/// serializer reads concurrently through the release/acquire pair on
/// `size`, so it sees fully-written spans only.
struct ThreadBuffer {
  explicit ThreadBuffer(std::string name_in, std::uint32_t tid_in)
      : name(std::move(name_in)), tid(tid_in) {
    spans.resize(Timeline::kRingCapacity);
  }

  std::vector<Span> spans;            ///< Fixed capacity, never resized.
  std::atomic<std::uint32_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  std::string name;                   ///< OS thread name at first span.
  std::uint32_t tid;                  ///< Registration order, stable.
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry;  // Leaked: outlives every thread.
  return *r;
}

std::atomic<std::uint64_t> g_epoch{1};
std::chrono::steady_clock::time_point g_t0;

std::string os_thread_name() {
#if defined(__linux__)
  char buf[16] = {0};
  if (pthread_getname_np(pthread_self(), buf, sizeof(buf)) == 0 &&
      buf[0] != '\0') {
    return buf;
  }
#endif
  return "thread";
}

/// The calling thread's buffer, created and registered on first use.
/// reset() bumps the epoch, so a stale cached buffer (from before the
/// reset) is abandoned and a fresh one registered.
ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> cached;
  thread_local std::uint64_t cached_epoch = 0;
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (!cached || cached_epoch != epoch) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    cached = std::make_shared<ThreadBuffer>(
        os_thread_name(), static_cast<std::uint32_t>(r.buffers.size()));
    r.buffers.push_back(cached);
    cached_epoch = epoch;
  }
  return *cached;
}

/// Microseconds with sub-ns kept: Chrome trace `ts`/`dur` are doubles.
std::string json_us(std::uint64_t ns) {
  return json_number(static_cast<double>(ns) / 1000.0);
}

}  // namespace

std::atomic<bool> Timeline::enabled_{false};

void Timeline::enable() {
  bool expected = false;
  if (enabled_.compare_exchange_strong(expected, true)) {
    g_t0 = std::chrono::steady_clock::now();
  }
}

void Timeline::reset() {
  enabled_.store(false, std::memory_order_relaxed);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.buffers.clear();
  g_epoch.fetch_add(1, std::memory_order_release);
}

std::uint64_t Timeline::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_t0)
          .count());
}

void Timeline::record(const char* name, const char* cat,
                      std::uint64_t start_ns, std::uint64_t dur_ns,
                      std::uint64_t arg) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  const std::uint32_t idx = buf.size.load(std::memory_order_relaxed);
  if (idx >= kRingCapacity) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.spans[idx] = Span{name, cat, start_ns, dur_ns, arg};
  buf.size.store(idx + 1, std::memory_order_release);
}

std::uint64_t Timeline::span_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& buf : r.buffers) {
    total += buf->size.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t Timeline::dropped() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& buf : r.buffers) {
    total += buf->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

bool Timeline::write(const std::string& path) {
  const failpoint::Hit hit = failpoint::check("obs.timeline");
  if (hit && hit.action != failpoint::Action::kDelay) {
    log_error("timeline write failed: ", path,
              ": injected fault (failpoint obs.timeline); "
              "the run's results are unaffected");
    return false;
  }

  // Snapshot the registry, then serialize outside the lock (recording
  // threads only ever append; the acquire-load below bounds what we read).
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    buffers = r.buffers;
  }

  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\": [\n";
  out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"allarm\"}}";
  std::uint64_t lost = 0;
  for (const auto& buf : buffers) {
    out += ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(buf->tid) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": " +
           json_quote(buf->name) + "}}";
  }
  for (const auto& buf : buffers) {
    const std::uint32_t n = buf->size.load(std::memory_order_acquire);
    lost += buf->dropped.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < n; ++i) {
      const Span& s = buf->spans[i];
      out += ",\n{\"name\": ";
      out += json_quote(s.name);
      out += ", \"cat\": ";
      out += json_quote(s.cat);
      out += ", \"ph\": \"X\", \"ts\": ";
      out += json_us(s.start_ns);
      out += ", \"dur\": ";
      out += json_us(s.dur_ns);
      out += ", \"pid\": 1, \"tid\": ";
      out += std::to_string(buf->tid);
      if (s.arg != kNoArg) {
        out += ", \"args\": {\"n\": ";
        out += std::to_string(s.arg);
        out += "}";
      }
      out += "}";
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";

  if (lost > 0) {
    log_warn("timeline ", path, ": ", lost,
             " spans dropped to ring overflow (first ", kRingCapacity,
             " per thread kept)");
  }

  const std::string tmp = path + ".tmp";
  try {
    write_file_durable(tmp, out);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      log_error("timeline write failed: rename ", tmp, " -> ", path,
                "; the run's results are unaffected");
      return false;
    }
  } catch (const std::exception& e) {
    std::remove(tmp.c_str());
    log_error("timeline write failed: ", e.what(),
              "; the run's results are unaffected");
    return false;
  }
  return true;
}

}  // namespace allarm::obs
