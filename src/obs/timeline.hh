// Flight recorder: low-overhead wall-clock span timelines.
//
// The simulator's own clock (Tick) answers "where do simulated
// picoseconds go"; this layer answers "where does *wall* time go" — per
// sweep job, per PDES lane window, per journal fsync, per service poll.
// Spans are recorded into lock-free per-thread rings and serialized at
// process end as Chrome trace-event JSON (`--timeline out.json`), which
// loads directly in Perfetto / chrome://tracing.
//
// Cost model, because this is always compiled in:
//   - disabled (the default): OBS_SPAN is one relaxed atomic load and a
//     predicted-untaken branch — the same budget as an inactive failpoint;
//   - enabled: two steady_clock reads plus one array store per span.  No
//     locks and no allocation on the record path; a thread's ring is
//     allocated once, on its first span.
//
// Ring overflow keeps the FIRST kRingCapacity spans per thread and counts
// the rest in `dropped()` — a truncated timeline is loudly truncated, it
// never reallocates or stalls the instrumented thread.  Span names and
// categories must be string literals (the ring stores the pointers).
//
// Timeline::write() polls the `obs.timeline` failpoint and absorbs every
// I/O error into a loud stderr line + `false` return: observability output
// must never fail a run that computed correct results (docs/ROBUSTNESS.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace allarm::obs {

/// Process-wide span recorder.  All methods are thread-safe.
class Timeline {
 public:
  static constexpr std::uint32_t kRingCapacity = 16384;  ///< Spans/thread.

  /// True when span recording is armed (relaxed load; the hot-path gate).
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Arms recording and anchors t=0.  Idempotent.
  static void enable();

  /// Disarms recording and discards every buffered span (tests only; a
  /// CLI run enables once and writes once at exit).
  static void reset();

  /// Monotonic nanoseconds since enable().
  static std::uint64_t now_ns();

  /// Records one completed span.  `name` and `cat` must be string
  /// literals.  No-op (minus the drop counter) when the ring is full.
  static void record(const char* name, const char* cat,
                     std::uint64_t start_ns, std::uint64_t dur_ns,
                     std::uint64_t arg = kNoArg);

  /// Spans buffered across all threads; dropped spans not included.
  static std::uint64_t span_count();

  /// Spans lost to ring overflow across all threads.
  static std::uint64_t dropped();

  /// Serializes every buffered span as Chrome trace-event JSON to `path`
  /// (write-to-temp + rename, so the file is whole or absent).  On any
  /// failure — including the `obs.timeline` failpoint — logs one loud
  /// error line and returns false; it never throws.  The run's own
  /// results are unaffected either way.
  static bool write(const std::string& path);

  /// Sentinel for "span has no numeric argument".
  static constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

 private:
  static std::atomic<bool> enabled_;
};

/// RAII span: times construction → destruction onto the current thread's
/// ring.  Disabled recorders cost the constructor's relaxed load only.
class SpanScope {
 public:
  SpanScope(const char* name, const char* cat,
            std::uint64_t arg = Timeline::kNoArg)
      : armed_(Timeline::enabled()), name_(name), cat_(cat), arg_(arg),
        start_ns_(armed_ ? Timeline::now_ns() : 0) {}

  ~SpanScope() {
    if (armed_) {
      Timeline::record(name_, cat_, start_ns_,
                       Timeline::now_ns() - start_ns_, arg_);
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  bool armed_;
  const char* name_;
  const char* cat_;
  std::uint64_t arg_;
  std::uint64_t start_ns_;
};

#define ALLARM_OBS_CONCAT2(a, b) a##b
#define ALLARM_OBS_CONCAT(a, b) ALLARM_OBS_CONCAT2(a, b)

/// Times the enclosing scope as span `name` under category `cat`.
#define OBS_SPAN(name, cat) \
  ::allarm::obs::SpanScope ALLARM_OBS_CONCAT(obs_span_, __LINE__)(name, cat)

/// Like OBS_SPAN with a numeric argument (job index, window ordinal, ...)
/// attached as `args.n` in the trace event.
#define OBS_SPAN_N(name, cat, arg)                                   \
  ::allarm::obs::SpanScope ALLARM_OBS_CONCAT(obs_span_, __LINE__)(   \
      name, cat, static_cast<std::uint64_t>(arg))

}  // namespace allarm::obs
