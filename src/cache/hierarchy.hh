// Per-node cache hierarchy: split L1I/L1D backed by a private, exclusive L2
// (the Table I arrangement).
//
// Exclusivity is strict: a line lives in at most one of {L1I, L1D, L2}.
// Fills go into the requesting L1; L1 victims move to the L2; L2 victims
// leave the hierarchy and are returned to the caller (the coherence
// controller decides whether a writeback or an eviction notification is
// due).  An L2 hit promotes the line back into the L1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "common/config.hh"

namespace allarm::cache {

/// Which array a line currently occupies.
enum class Array : std::uint8_t { kNone, kL1D, kL1I, kL2 };

std::string to_string(Array array);

/// Result of locating a line in the hierarchy.
struct Location {
  Array array = Array::kNone;
  LineState state = LineState::kInvalid;

  bool present() const { return array != Array::kNone; }
};

/// The three-array exclusive hierarchy.
class Hierarchy {
 public:
  Hierarchy(const SystemConfig& config, std::uint64_t seed,
            const std::string& name);

  /// Finds `line` (no side effects).
  Location locate(LineAddr line) const;

  /// Replacement bookkeeping for a hit on `line`.
  void touch(LineAddr line);

  /// touch(), returning a mutable pointer to the line's state (nullptr when
  /// absent).  Single tag scan for the core's L1-hit fast path.
  LineState* touch_ref(LineAddr line);

  /// Inserts `line` into `target` (must be kL1D or kL1I, and the line must
  /// be absent).  Returns the lines pushed out of the hierarchy, oldest
  /// first.  The returned reference aliases a scratch buffer reused by the
  /// next fill/promote call -- consume it before re-entering the hierarchy
  /// (this keeps the per-miss path free of vector allocations).
  const std::vector<Victim>& fill(Array target, LineAddr line,
                                  LineState state);

  /// Moves a line that hit in the L2 up into `target` (kL1D or kL1I),
  /// preserving its state.  Returns lines pushed out of the hierarchy
  /// (same aliasing rule as fill).
  const std::vector<Victim>& promote(Array target, LineAddr line);

  /// Removes `line` from whichever array holds it.
  /// Returns the state it held (kInvalid when absent).
  LineState invalidate(LineAddr line);

  /// Downgrades `line` for a read probe: M -> O, E -> S (O, S unchanged).
  /// Returns the state held *before* the downgrade (kInvalid when absent).
  LineState downgrade(LineAddr line);

  /// Rewrites the state of a present line in place. Returns false if absent.
  /// `state` must be valid (use invalidate() to remove a line).
  bool set_state(LineAddr line, LineState state);

  /// Mutable pointer to a present line's state (nullptr when absent); no
  /// replacement bookkeeping.  Do not write kInvalid through it.
  LineState* state_ref(LineAddr line);

  /// Applies `fn(line, state)` over every line in the hierarchy.
  void for_each(FunctionRef<void(LineAddr, LineState)> fn) const;

  /// Total lines held across the three arrays.
  std::uint32_t occupancy() const;

  /// Drops every line (between experiment repetitions).
  void clear();

  const Cache& l1d() const { return l1d_; }
  const Cache& l1i() const { return l1i_; }
  const Cache& l2() const { return l2_; }

 private:
  Cache& array_of(Array a);

  /// Inserts into an L1 and cascades the victim into the L2; L2 victims are
  /// appended to `out`.
  void insert_cascading(Array target, LineAddr line, LineState state,
                        std::vector<Victim>& out);

  /// Presence filter across all three arrays: broadcast probes for lines
  /// this node never held (the common case under Hammer semantics) skip
  /// the tag scans entirely.  Declared before the arrays, which register
  /// themselves against it at construction.
  PresenceFilter presence_;
  Cache l1d_;
  Cache l1i_;
  Cache l2_;
  std::vector<Victim> victims_scratch_;  ///< Backing for fill/promote results.
};

}  // namespace allarm::cache
