#include "cache/replacement.hh"

#include <stdexcept>

namespace allarm::cache {

// ---------------------------------------------------------------- LRU ----
// touch() and victim_any() live in the header (devirtualized hot path).

std::uint32_t LruPolicy::victim(std::uint32_t set,
                                const std::vector<bool>& eligible) {
  std::uint32_t best = ways_;
  std::uint64_t best_stamp = ~0ull;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!eligible[w]) continue;
    const std::uint64_t s = stamp_[static_cast<std::size_t>(set) * ways_ + w];
    if (best == ways_ || s < best_stamp) {
      best = w;
      best_stamp = s;
    }
  }
  if (best == ways_) throw std::logic_error("LruPolicy: no eligible way");
  return best;
}

// ----------------------------------------------------------- Tree PLRU ----

namespace {

// Validated before any member initializer runs: ways - 1 below would
// underflow for ways == 0 and size a multi-gigabyte bit vector.
std::uint32_t checked_pow2_ways(std::uint32_t ways) {
  if (ways == 0 || (ways & (ways - 1)) != 0) {
    throw std::invalid_argument("TreePlruPolicy: ways must be a power of two");
  }
  return ways;
}

}  // namespace

TreePlruPolicy::TreePlruPolicy(std::uint32_t sets, std::uint32_t ways)
    : ways_(checked_pow2_ways(ways)), tree_bits_(ways - 1),
      bits_(static_cast<std::size_t>(sets) * (ways - 1), 0) {}

void TreePlruPolicy::touch(std::uint32_t set, std::uint32_t way) {
  // Walk from the root; at each internal node set the bit to point AWAY
  // from the touched way.
  std::uint8_t* tree = &bits_[static_cast<std::size_t>(set) * tree_bits_];
  std::uint32_t node = 0;
  std::uint32_t span = ways_;
  std::uint32_t lo = 0;
  while (span > 1) {
    const std::uint32_t half = span / 2;
    const bool right = way >= lo + half;
    tree[node] = right ? 0 : 1;  // Point at the other half.
    node = 2 * node + (right ? 2 : 1);
    if (right) lo += half;
    span = half;
  }
}

std::uint32_t TreePlruPolicy::victim(std::uint32_t set,
                                     const std::vector<bool>& eligible) {
  const std::uint8_t* tree = &bits_[static_cast<std::size_t>(set) * tree_bits_];
  std::uint32_t node = 0;
  std::uint32_t span = ways_;
  std::uint32_t lo = 0;
  while (span > 1) {
    const std::uint32_t half = span / 2;
    const bool right = tree[node] != 0;
    node = 2 * node + (right ? 2 : 1);
    if (right) lo += half;
    span = half;
  }
  if (eligible[lo]) return lo;
  // The tree-implied victim is pinned (e.g. its line is mid-transaction):
  // fall back to the first eligible way.
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (eligible[w]) return w;
  }
  throw std::logic_error("TreePlruPolicy: no eligible way");
}

std::uint32_t TreePlruPolicy::victim_any(std::uint32_t set) {
  // The tree-implied victim; always eligible in this variant.
  const std::uint8_t* tree = &bits_[static_cast<std::size_t>(set) * tree_bits_];
  std::uint32_t node = 0;
  std::uint32_t span = ways_;
  std::uint32_t lo = 0;
  while (span > 1) {
    const std::uint32_t half = span / 2;
    const bool right = tree[node] != 0;
    node = 2 * node + (right ? 2 : 1);
    if (right) lo += half;
    span = half;
  }
  return lo;
}

// -------------------------------------------------------------- Random ----

RandomPolicy::RandomPolicy(std::uint32_t sets, std::uint32_t ways,
                           std::uint64_t seed)
    : ways_(ways), rng_(seed) {
  (void)sets;
}

void RandomPolicy::touch(std::uint32_t, std::uint32_t) {}

std::uint32_t RandomPolicy::victim(std::uint32_t,
                                   const std::vector<bool>& eligible) {
  std::uint32_t eligible_count = 0;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (eligible[w]) ++eligible_count;
  }
  if (eligible_count == 0) throw std::logic_error("RandomPolicy: no eligible way");
  std::uint32_t pick = static_cast<std::uint32_t>(rng_.below(eligible_count));
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!eligible[w]) continue;
    if (pick == 0) return w;
    --pick;
  }
  throw std::logic_error("RandomPolicy: unreachable");
}

std::uint32_t RandomPolicy::victim_any(std::uint32_t) {
  // Same draw as victim() with all ways eligible (identical RNG stream).
  return static_cast<std::uint32_t>(rng_.below(ways_));
}

// ------------------------------------------------------------- Factory ----

std::unique_ptr<ReplacementPolicy> make_policy(ReplacementKind kind,
                                               std::uint32_t sets,
                                               std::uint32_t ways,
                                               std::uint64_t seed) {
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>(sets, ways);
    case ReplacementKind::kTreePlru:
      return std::make_unique<TreePlruPolicy>(sets, ways);
    case ReplacementKind::kRandom:
      return std::make_unique<RandomPolicy>(sets, ways, seed);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace allarm::cache
