// A set-associative cache array holding MOESI coherence state.
//
// The array stores state only (the simulator does not move data bytes);
// hit/miss behaviour, replacement and eviction mechanics are exact.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/presence.hh"
#include "cache/replacement.hh"
#include "common/config.hh"
#include "common/function_ref.hh"
#include "common/types.hh"

namespace allarm::cache {

/// MOESI line states.
enum class LineState : std::uint8_t {
  kInvalid,
  kShared,     ///< Clean, possibly other sharers.
  kExclusive,  ///< Clean, sole copy.
  kOwned,      ///< Dirty, responsible for writeback, other sharers may exist.
  kModified,   ///< Dirty, sole copy.
};

/// True for states that require a data writeback on eviction.
constexpr bool is_dirty(LineState s) {
  return s == LineState::kModified || s == LineState::kOwned;
}

/// True for any valid (non-invalid) state.
constexpr bool is_valid(LineState s) { return s != LineState::kInvalid; }

/// True for states granting store permission.
constexpr bool is_writable(LineState s) {
  return s == LineState::kModified || s == LineState::kExclusive;
}

std::string to_string(LineState s);

/// A line leaving the cache: its address and the state it held.
struct Victim {
  LineAddr line = 0;
  LineState state = LineState::kInvalid;

  bool valid() const { return is_valid(state); }
};

/// One set-associative array.
class Cache {
 public:
  /// `seed` feeds the random replacement policy (unused by LRU/PLRU).
  Cache(const CacheConfig& config, ReplacementKind replacement,
        std::uint64_t seed, std::string name);

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }
  std::uint32_t capacity_lines() const { return sets_ * ways_; }
  const std::string& name() const { return name_; }

  /// Returns the state of `line` (kInvalid when absent). No side effects.
  LineState state_of(LineAddr line) const;

  /// Returns true when `line` is present in any valid state.
  bool contains(LineAddr line) const { return is_valid(state_of(line)); }

  /// Marks `line` as accessed (replacement bookkeeping). Returns true on hit.
  bool touch(LineAddr line);

  /// touch(), but returns a mutable pointer to the line's state (nullptr on
  /// miss) so the core's load/store hit path can rewrite the state without
  /// a second tag scan.
  LineState* touch_ref(LineAddr line);

  /// Changes the state of a present line. Returns false when absent.
  bool set_state(LineAddr line, LineState state);

  /// Mutable pointer to the line's state (nullptr when absent).  No
  /// replacement bookkeeping — the single-scan backend of state rewrites
  /// like Hierarchy::downgrade.  Callers must not write kInvalid through
  /// the pointer (that is erase()'s job).
  LineState* state_ref(LineAddr line) {
    Slot* s = find_slot(line);
    return s ? &s->state : nullptr;
  }

  /// Registers the hierarchy-level presence filter this array reports its
  /// inserts and erases to (nullptr detaches).
  void set_presence_filter(PresenceFilter* filter) { presence_ = filter; }

  /// Inserts `line` (which must not already be present) in `state`.
  /// Returns the victim that was displaced; victim.valid() is false when a
  /// free way was used.
  Victim insert(LineAddr line, LineState state);

  /// Removes `line`; returns the state it held (kInvalid when absent).
  LineState erase(LineAddr line);

  /// Number of valid lines currently held.
  std::uint32_t occupancy() const { return occupancy_; }

  /// Invokes `fn(line, state)` for every valid line (for invariant checks).
  void for_each(FunctionRef<void(LineAddr, LineState)> fn) const;

  /// Removes every line (used between experiment repetitions).
  void clear();

 private:
  struct Slot {
    LineAddr line = 0;
    LineState state = LineState::kInvalid;
  };

  std::uint32_t set_of(LineAddr line) const {
    return static_cast<std::uint32_t>(line & (sets_ - 1));
  }
  Slot* find_slot(LineAddr line);
  const Slot* find_slot(LineAddr line) const;

  /// Replacement-policy calls run on every access; when the policy is the
  /// default LRU these route through the exact (final) type so the
  /// compiler inlines the stamp update instead of an indirect call.
  void policy_touch(std::uint32_t set, std::uint32_t way) {
    if (lru_ != nullptr) lru_->touch(set, way);
    else policy_->touch(set, way);
  }
  std::uint32_t policy_victim_any(std::uint32_t set) {
    return lru_ != nullptr ? lru_->victim_any(set) : policy_->victim_any(set);
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::string name_;
  std::vector<Slot> slots_;  // sets x ways
  std::unique_ptr<ReplacementPolicy> policy_;
  LruPolicy* lru_ = nullptr;  ///< Non-null iff policy_ is the LRU policy.
  PresenceFilter* presence_ = nullptr;  ///< Shared, owned by the hierarchy.
  std::uint32_t occupancy_ = 0;
};

}  // namespace allarm::cache
