// A set-associative cache array holding MOESI coherence state.
//
// The array stores state only (the simulator does not move data bytes);
// hit/miss behaviour, replacement and eviction mechanics are exact.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/config.hh"
#include "common/function_ref.hh"
#include "common/types.hh"

namespace allarm::cache {

/// MOESI line states.
enum class LineState : std::uint8_t {
  kInvalid,
  kShared,     ///< Clean, possibly other sharers.
  kExclusive,  ///< Clean, sole copy.
  kOwned,      ///< Dirty, responsible for writeback, other sharers may exist.
  kModified,   ///< Dirty, sole copy.
};

/// True for states that require a data writeback on eviction.
constexpr bool is_dirty(LineState s) {
  return s == LineState::kModified || s == LineState::kOwned;
}

/// True for any valid (non-invalid) state.
constexpr bool is_valid(LineState s) { return s != LineState::kInvalid; }

/// True for states granting store permission.
constexpr bool is_writable(LineState s) {
  return s == LineState::kModified || s == LineState::kExclusive;
}

std::string to_string(LineState s);

/// A line leaving the cache: its address and the state it held.
struct Victim {
  LineAddr line = 0;
  LineState state = LineState::kInvalid;

  bool valid() const { return is_valid(state); }
};

/// One set-associative array.
class Cache {
 public:
  /// `seed` feeds the random replacement policy (unused by LRU/PLRU).
  Cache(const CacheConfig& config, ReplacementKind replacement,
        std::uint64_t seed, std::string name);

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }
  std::uint32_t capacity_lines() const { return sets_ * ways_; }
  const std::string& name() const { return name_; }

  /// Returns the state of `line` (kInvalid when absent). No side effects.
  LineState state_of(LineAddr line) const;

  /// Returns true when `line` is present in any valid state.
  bool contains(LineAddr line) const { return is_valid(state_of(line)); }

  /// Marks `line` as accessed (replacement bookkeeping). Returns true on hit.
  bool touch(LineAddr line);

  /// touch(), but returns a mutable pointer to the line's state (nullptr on
  /// miss) so the core's load/store hit path can rewrite the state without
  /// a second tag scan.
  LineState* touch_ref(LineAddr line);

  /// Changes the state of a present line. Returns false when absent.
  bool set_state(LineAddr line, LineState state);

  /// Inserts `line` (which must not already be present) in `state`.
  /// Returns the victim that was displaced; victim.valid() is false when a
  /// free way was used.
  Victim insert(LineAddr line, LineState state);

  /// Removes `line`; returns the state it held (kInvalid when absent).
  LineState erase(LineAddr line);

  /// Number of valid lines currently held.
  std::uint32_t occupancy() const { return occupancy_; }

  /// Invokes `fn(line, state)` for every valid line (for invariant checks).
  void for_each(FunctionRef<void(LineAddr, LineState)> fn) const;

  /// Removes every line (used between experiment repetitions).
  void clear();

 private:
  struct Slot {
    LineAddr line = 0;
    LineState state = LineState::kInvalid;
  };

  std::uint32_t set_of(LineAddr line) const {
    return static_cast<std::uint32_t>(line & (sets_ - 1));
  }
  Slot* find_slot(LineAddr line);
  const Slot* find_slot(LineAddr line) const;

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::string name_;
  std::vector<Slot> slots_;  // sets x ways
  std::unique_ptr<ReplacementPolicy> policy_;
  std::uint32_t occupancy_ = 0;
};

}  // namespace allarm::cache
