#include "cache/cache.hh"

#include <stdexcept>

namespace allarm::cache {

std::string to_string(LineState s) {
  switch (s) {
    case LineState::kInvalid: return "I";
    case LineState::kShared: return "S";
    case LineState::kExclusive: return "E";
    case LineState::kOwned: return "O";
    case LineState::kModified: return "M";
  }
  return "?";
}

Cache::Cache(const CacheConfig& config, ReplacementKind replacement,
             std::uint64_t seed, std::string name)
    : sets_(config.sets()),
      ways_(config.ways),
      name_(std::move(name)),
      slots_(static_cast<std::size_t>(config.sets()) * config.ways),
      policy_(make_policy(replacement, config.sets(), config.ways, seed)) {
  if (replacement == ReplacementKind::kLru) {
    lru_ = static_cast<LruPolicy*>(policy_.get());
  }
}

Cache::Slot* Cache::find_slot(LineAddr line) {
  Slot* base = &slots_[static_cast<std::size_t>(set_of(line)) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (is_valid(base[w].state) && base[w].line == line) return &base[w];
  }
  return nullptr;
}

const Cache::Slot* Cache::find_slot(LineAddr line) const {
  return const_cast<Cache*>(this)->find_slot(line);
}

LineState Cache::state_of(LineAddr line) const {
  const Slot* s = find_slot(line);
  return s ? s->state : LineState::kInvalid;
}

bool Cache::touch(LineAddr line) {
  return touch_ref(line) != nullptr;
}

LineState* Cache::touch_ref(LineAddr line) {
  Slot* s = find_slot(line);
  if (!s) return nullptr;
  const auto way = static_cast<std::uint32_t>(
      s - &slots_[static_cast<std::size_t>(set_of(line)) * ways_]);
  policy_touch(set_of(line), way);
  return &s->state;
}

bool Cache::set_state(LineAddr line, LineState state) {
  if (state == LineState::kInvalid) {
    throw std::invalid_argument("Cache::set_state: use erase() to invalidate");
  }
  Slot* s = find_slot(line);
  if (!s) return false;
  s->state = state;
  return true;
}

Victim Cache::insert(LineAddr line, LineState state) {
  if (!is_valid(state)) {
    throw std::invalid_argument("Cache::insert: invalid state");
  }
  const std::uint32_t set = set_of(line);
  Slot* base = &slots_[static_cast<std::size_t>(set) * ways_];

  // One scan: find the first free way while guarding against duplicates.
  std::uint32_t free_way = ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!is_valid(base[w].state)) {
      if (free_way == ways_) free_way = w;
    } else if (base[w].line == line) {
      throw std::logic_error("Cache::insert: line already present in " + name_);
    }
  }
  if (free_way != ways_) {
    base[free_way] = Slot{line, state};
    policy_touch(set, free_way);
    ++occupancy_;
    if (presence_ != nullptr) presence_->add(line);
    return Victim{};
  }

  // Evict a victim (all ways eligible: caches never pin lines; the probe
  // filter, which does pin busy lines, selects victims itself).
  const std::uint32_t w = policy_victim_any(set);
  const Victim victim{base[w].line, base[w].state};
  base[w] = Slot{line, state};
  policy_touch(set, w);
  if (presence_ != nullptr) {
    presence_->add(line);
    presence_->remove(victim.line);
  }
  return victim;
}

LineState Cache::erase(LineAddr line) {
  Slot* s = find_slot(line);
  if (!s) return LineState::kInvalid;
  const LineState had = s->state;
  s->state = LineState::kInvalid;
  --occupancy_;
  if (presence_ != nullptr) presence_->remove(line);
  return had;
}

void Cache::for_each(FunctionRef<void(LineAddr, LineState)> fn) const {
  for (const Slot& s : slots_) {
    if (is_valid(s.state)) fn(s.line, s.state);
  }
}

void Cache::clear() {
  for (Slot& s : slots_) {
    if (presence_ != nullptr && is_valid(s.state)) presence_->remove(s.line);
    s.state = LineState::kInvalid;
  }
  occupancy_ = 0;
}

}  // namespace allarm::cache
