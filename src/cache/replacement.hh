// Replacement policies for set-associative arrays (caches and the probe
// filter).  A policy instance serves one array; it keeps whatever per-set
// metadata it needs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"

namespace allarm::cache {

/// Interface for a per-array replacement policy.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Notifies the policy that (set, way) was accessed (hit or fill).
  virtual void touch(std::uint32_t set, std::uint32_t way) = 0;

  /// Chooses a victim way in `set`, considering only ways for which
  /// `eligible[way]` is true.  At least one way must be eligible.
  /// Returns the chosen way.
  virtual std::uint32_t victim(std::uint32_t set,
                               const std::vector<bool>& eligible) = 0;

  /// victim() with every way eligible -- the caches' common case (they
  /// never pin lines), without the eligibility-vector scan.  Must pick the
  /// same way (and consume the same amount of randomness) as victim()
  /// would with an all-true vector.
  virtual std::uint32_t victim_any(std::uint32_t set) = 0;
};

/// True LRU via per-way access stamps.
///
/// touch() and victim_any() are defined inline: they run on every cache
/// access, and arrays that detect an LruPolicy at construction call them
/// through the exact type (Cache's devirtualized fast path) so the
/// per-touch cost is one store and an increment, no indirect call.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::uint32_t sets, std::uint32_t ways)
      : ways_(ways), stamp_(static_cast<std::size_t>(sets) * ways, 0) {}

  void touch(std::uint32_t set, std::uint32_t way) override {
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
  }

  std::uint32_t victim(std::uint32_t set,
                       const std::vector<bool>& eligible) override;

  std::uint32_t victim_any(std::uint32_t set) override {
    // Identical selection to victim() with every way eligible: the first
    // way holding the minimum stamp.
    const std::uint64_t* stamps =
        &stamp_[static_cast<std::size_t>(set) * ways_];
    std::uint32_t best = 0;
    std::uint64_t best_stamp = stamps[0];
    for (std::uint32_t w = 1; w < ways_; ++w) {
      if (stamps[w] < best_stamp) {
        best = w;
        best_stamp = stamps[w];
      }
    }
    return best;
  }

 private:
  std::uint32_t ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamp_;  // sets x ways
};

/// Tree pseudo-LRU.  Ways must be a power of two; falls back to the
/// tree-implied victim, skipping ineligible ways in stamp order when the
/// implied victim is ineligible.
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  TreePlruPolicy(std::uint32_t sets, std::uint32_t ways);
  void touch(std::uint32_t set, std::uint32_t way) override;
  std::uint32_t victim(std::uint32_t set,
                       const std::vector<bool>& eligible) override;
  std::uint32_t victim_any(std::uint32_t set) override;

 private:
  std::uint32_t ways_;
  std::uint32_t tree_bits_;           // ways - 1 internal nodes
  std::vector<std::uint8_t> bits_;    // sets x tree_bits
};

/// Pseudo-random victim from a seeded generator (deterministic per run).
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::uint32_t sets, std::uint32_t ways, std::uint64_t seed);
  void touch(std::uint32_t set, std::uint32_t way) override;
  std::uint32_t victim(std::uint32_t set,
                       const std::vector<bool>& eligible) override;
  std::uint32_t victim_any(std::uint32_t set) override;

 private:
  std::uint32_t ways_;
  Rng rng_;
};

/// Factory keyed by the configuration enum.
std::unique_ptr<ReplacementPolicy> make_policy(ReplacementKind kind,
                                               std::uint32_t sets,
                                               std::uint32_t ways,
                                               std::uint64_t seed);

}  // namespace allarm::cache
