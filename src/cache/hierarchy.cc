#include "cache/hierarchy.hh"

#include <stdexcept>

namespace allarm::cache {

std::string to_string(Array array) {
  switch (array) {
    case Array::kNone: return "none";
    case Array::kL1D: return "L1D";
    case Array::kL1I: return "L1I";
    case Array::kL2: return "L2";
  }
  return "?";
}

Hierarchy::Hierarchy(const SystemConfig& config, std::uint64_t seed,
                     const std::string& name)
    : l1d_(config.l1d, config.cache_replacement, seed * 3 + 1, name + ".l1d"),
      l1i_(config.l1i, config.cache_replacement, seed * 3 + 2, name + ".l1i"),
      l2_(config.l2, config.cache_replacement, seed * 3 + 3, name + ".l2") {
  l1d_.set_presence_filter(&presence_);
  l1i_.set_presence_filter(&presence_);
  l2_.set_presence_filter(&presence_);
}

Cache& Hierarchy::array_of(Array a) {
  switch (a) {
    case Array::kL1D: return l1d_;
    case Array::kL1I: return l1i_;
    case Array::kL2: return l2_;
    case Array::kNone: break;
  }
  throw std::invalid_argument("Hierarchy: bad array");
}

Location Hierarchy::locate(LineAddr line) const {
  if (!presence_.maybe_present(line)) return {};
  if (LineState s = l1d_.state_of(line); is_valid(s)) return {Array::kL1D, s};
  if (LineState s = l1i_.state_of(line); is_valid(s)) return {Array::kL1I, s};
  if (LineState s = l2_.state_of(line); is_valid(s)) return {Array::kL2, s};
  return {};
}

void Hierarchy::touch(LineAddr line) {
  if (!presence_.maybe_present(line)) return;
  if (!l1d_.touch(line) && !l1i_.touch(line)) l2_.touch(line);
}

LineState* Hierarchy::touch_ref(LineAddr line) {
  if (!presence_.maybe_present(line)) return nullptr;
  if (LineState* s = l1d_.touch_ref(line)) return s;
  if (LineState* s = l1i_.touch_ref(line)) return s;
  return l2_.touch_ref(line);
}

void Hierarchy::insert_cascading(Array target, LineAddr line, LineState state,
                                 std::vector<Victim>& out) {
  const Victim l1_victim = array_of(target).insert(line, state);
  if (!l1_victim.valid()) return;
  const Victim l2_victim = l2_.insert(l1_victim.line, l1_victim.state);
  if (l2_victim.valid()) out.push_back(l2_victim);
}

const std::vector<Victim>& Hierarchy::fill(Array target, LineAddr line,
                                           LineState state) {
  if (target != Array::kL1D && target != Array::kL1I) {
    throw std::invalid_argument("Hierarchy::fill: target must be an L1");
  }
  if (locate(line).present()) {
    throw std::logic_error("Hierarchy::fill: line already present");
  }
  victims_scratch_.clear();
  insert_cascading(target, line, state, victims_scratch_);
  return victims_scratch_;
}

const std::vector<Victim>& Hierarchy::promote(Array target, LineAddr line) {
  if (target != Array::kL1D && target != Array::kL1I) {
    throw std::invalid_argument("Hierarchy::promote: target must be an L1");
  }
  const LineState state = l2_.erase(line);
  if (!is_valid(state)) {
    throw std::logic_error("Hierarchy::promote: line not in L2");
  }
  victims_scratch_.clear();
  insert_cascading(target, line, state, victims_scratch_);
  return victims_scratch_;
}

LineState Hierarchy::invalidate(LineAddr line) {
  if (!presence_.maybe_present(line)) return LineState::kInvalid;
  // L2 first: invalidations come from probes, and probed lines mostly sit
  // in the (8x larger) L2 by the time a remote conflict or eviction finds
  // them.  Strict exclusivity means scan order cannot change the result.
  if (LineState s = l2_.erase(line); is_valid(s)) return s;
  if (LineState s = l1d_.erase(line); is_valid(s)) return s;
  return l1i_.erase(line);
}

/// Mutable state slot of `line`, or nullptr — one presence check and at
/// most three tag scans, shared by downgrade/set_state so a hit is a
/// single pass instead of locate()-then-rescan.
LineState* Hierarchy::state_ref(LineAddr line) {
  if (!presence_.maybe_present(line)) return nullptr;
  if (LineState* s = l1d_.state_ref(line)) return s;
  if (LineState* s = l1i_.state_ref(line)) return s;
  return l2_.state_ref(line);
}

LineState Hierarchy::downgrade(LineAddr line) {
  LineState* s = state_ref(line);
  if (s == nullptr) return LineState::kInvalid;
  const LineState had = *s;
  if (had == LineState::kModified) *s = LineState::kOwned;
  else if (had == LineState::kExclusive) *s = LineState::kShared;
  return had;
}

bool Hierarchy::set_state(LineAddr line, LineState state) {
  if (state == LineState::kInvalid) {
    throw std::invalid_argument(
        "Hierarchy::set_state: use invalidate() to remove a line");
  }
  LineState* s = state_ref(line);
  if (s == nullptr) return false;
  *s = state;
  return true;
}

void Hierarchy::for_each(FunctionRef<void(LineAddr, LineState)> fn) const {
  l1d_.for_each(fn);
  l1i_.for_each(fn);
  l2_.for_each(fn);
}

std::uint32_t Hierarchy::occupancy() const {
  return l1d_.occupancy() + l1i_.occupancy() + l2_.occupancy();
}

void Hierarchy::clear() {
  l1d_.clear();
  l1i_.clear();
  l2_.clear();
}

}  // namespace allarm::cache
