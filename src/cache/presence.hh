// Counting presence filter over the line addresses a node's hierarchy
// holds.
//
// Hammer-style coherence broadcasts probes to every node, so the common
// probe outcome is "not here" — discovered, without a filter, by scanning
// three set-associative arrays (and their replacement metadata) for
// nothing.  The filter maintains one counter per hashed line bucket,
// incremented on insert and decremented on erase: a zero bucket proves the
// line is absent and the scans are skipped entirely.  A non-zero bucket
// (a hit or a hash collision) falls through to the exact scan, so results
// are identical with or without the filter — it is purely an accelerator.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace allarm::cache {

class PresenceFilter {
 public:
  /// 64 Ki one-byte counters (64 kB per node).  A hierarchy holds ~5 K
  /// lines, so the false-positive (collision) rate is ~7% and per-bucket
  /// counts stay far below the 8-bit range (asserted in debug builds).
  static constexpr std::uint32_t kBucketBits = 16;

  void add(LineAddr line) {
    std::uint8_t& count = counts_[index(line)];
    assert(count != 0xFF && "PresenceFilter: bucket counter overflow");
    ++count;
  }

  void remove(LineAddr line) {
    std::uint8_t& count = counts_[index(line)];
    assert(count != 0 && "PresenceFilter: bucket counter underflow");
    --count;
  }

  /// False means `line` is definitely not held; true means "scan to know".
  bool maybe_present(LineAddr line) const { return counts_[index(line)] != 0; }

  void clear() { counts_.assign(counts_.size(), 0); }

 private:
  static std::uint32_t index(LineAddr line) {
    // Fibonacci hash: one multiply, top bits.  Physical frames are already
    // scrambled, but the multiply keeps any stride pattern from aliasing.
    return static_cast<std::uint32_t>((line * 0x9E3779B97F4A7C15ull) >>
                                      (64 - kBucketBits));
  }

  std::vector<std::uint8_t> counts_ =
      std::vector<std::uint8_t>(std::size_t{1} << kBucketBits, 0);
};

}  // namespace allarm::cache
