#include "core/experiment.hh"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/timeline.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"

namespace allarm::core {

RunResult run_single(SystemConfig config, DirectoryMode mode,
                     const workload::WorkloadSpec& spec, std::uint64_t seed,
                     numa::AllocPolicy policy) {
  config.directory_mode = mode;
  System system(config, policy);
  RunOptions options;
  options.seed = seed;
  return system.run(spec, options);
}

PairResult run_pair(const SystemConfig& config,
                    const workload::WorkloadSpec& spec, std::uint64_t seed) {
  PairResult result;
  result.baseline = run_single(config, DirectoryMode::kBaseline, spec, seed);
  result.allarm = run_single(config, DirectoryMode::kAllarm, spec, seed);
  return result;
}

RunResult run_request(const RunRequest& request, std::uint64_t deadline_ns) {
  const auto t0 = std::chrono::steady_clock::now();

  SystemConfig config = request.config;
  config.directory_mode = request.mode;
  // Trace replay substitutes the whole workload (threads, generators,
  // setup); the request's spec still names the grid cell in reports.
  // The request's identity must match the capture run's — replaying a
  // seed-42 stream under a seed-43 label would produce a chimera report
  // that matches neither run, silently.  Divergent-scenario replay
  // (other mode/policy/cores) goes through `sweep --grid trace` or
  // `trace replay`, which label cells by the trace, not a synthetic grid.
  workload::WorkloadSpec replay_spec;
  const workload::WorkloadSpec* spec = &request.spec;
  if (!request.replay_trace.empty()) {
    const auto reader =
        std::make_shared<const trace::TraceReader>(request.replay_trace);
    const trace::TraceMeta& meta = reader->meta();
    const auto mismatch = [&](const char* what, std::uint64_t got,
                              std::uint64_t want) {
      throw std::runtime_error(
          "trace " + request.replay_trace + " was captured with " + what +
          " " + std::to_string(got) + " but this job runs with " +
          std::to_string(want) +
          " — refusing to splice mismatched results into the report "
          "(replay divergent scenarios via sweep --grid trace or the "
          "trace CLI)");
    };
    if (meta.seed != request.seed) mismatch("seed", meta.seed, request.seed);
    if (meta.directory_mode !=
        static_cast<std::uint32_t>(config.directory_mode)) {
      mismatch("directory mode", meta.directory_mode,
               static_cast<std::uint32_t>(config.directory_mode));
    }
    if (meta.alloc_policy != static_cast<std::uint32_t>(request.policy)) {
      mismatch("allocation policy", meta.alloc_policy,
               static_cast<std::uint32_t>(request.policy));
    }
    replay_spec = trace::make_replay_workload(reader, config);
    spec = &replay_spec;
  }

  std::optional<trace::TraceWriter> writer;
  RunOptions options;
  options.seed = request.seed;
  options.deadline_ns = deadline_ns;
  options.par = request.par;
  options.profile = request.profile;
  if (!request.capture_trace.empty()) {
    writer.emplace(request.capture_trace);
    options.capture = &*writer;
  }

  RunResult result;
  {
    OBS_SPAN("sim.run", "sim");
    System system(config, request.policy);
    result = system.run(*spec, options);
  }
  if (writer) writer->finish();

  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return result;
}

std::uint64_t bench_accesses(std::uint64_t fallback) {
  if (const char* env = std::getenv("ALLARM_BENCH_ACCESSES")) {
    const std::uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

std::uint32_t bench_jobs(std::uint32_t fallback) {
  if (const char* env = std::getenv("ALLARM_JOBS")) {
    const std::uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0 && v <= 4096) return static_cast<std::uint32_t>(v);
  }
  if (fallback > 0) return fallback;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace allarm::core
