#include "core/experiment.hh"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

namespace allarm::core {

RunResult run_single(SystemConfig config, DirectoryMode mode,
                     const workload::WorkloadSpec& spec, std::uint64_t seed,
                     numa::AllocPolicy policy) {
  config.directory_mode = mode;
  System system(config, policy);
  RunOptions options;
  options.seed = seed;
  return system.run(spec, options);
}

PairResult run_pair(const SystemConfig& config,
                    const workload::WorkloadSpec& spec, std::uint64_t seed) {
  PairResult result;
  result.baseline = run_single(config, DirectoryMode::kBaseline, spec, seed);
  result.allarm = run_single(config, DirectoryMode::kAllarm, spec, seed);
  return result;
}

RunResult run_request(const RunRequest& request) {
  const auto t0 = std::chrono::steady_clock::now();
  RunResult result = run_single(request.config, request.mode, request.spec,
                                request.seed, request.policy);
  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return result;
}

std::uint64_t bench_accesses(std::uint64_t fallback) {
  if (const char* env = std::getenv("ALLARM_BENCH_ACCESSES")) {
    const std::uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

std::uint32_t bench_jobs(std::uint32_t fallback) {
  if (const char* env = std::getenv("ALLARM_JOBS")) {
    const std::uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0 && v <= 4096) return static_cast<std::uint32_t>(v);
  }
  if (fallback > 0) return fallback;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace allarm::core
