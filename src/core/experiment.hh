// Experiment harness: the one place that knows how to run
// (workload x configuration) pairs and derive the metrics each paper
// figure reports.  Used by every bench binary and by the integration tests.
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "core/system.hh"
#include "workload/spec.hh"

namespace allarm::core {

/// Runs `spec` once on a fresh System with the given directory mode.
RunResult run_single(SystemConfig config, DirectoryMode mode,
                     const workload::WorkloadSpec& spec, std::uint64_t seed,
                     numa::AllocPolicy policy = numa::AllocPolicy::kFirstTouch);

/// Baseline + ALLARM runs of the same workload and seed.
struct PairResult {
  RunResult baseline;
  RunResult allarm;

  /// allarm/baseline ratio of a named statistic (1.0 when undefined).
  double normalized(const std::string& stat) const {
    return allarm.stats.normalized_to(baseline.stats, stat);
  }
  /// Baseline runtime / ALLARM runtime (the paper's speedup).
  double speedup() const {
    return allarm.runtime == 0
               ? 1.0
               : static_cast<double>(baseline.runtime) /
                     static_cast<double>(allarm.runtime);
  }
};

PairResult run_pair(const SystemConfig& config,
                    const workload::WorkloadSpec& spec, std::uint64_t seed);

/// Number of accesses per thread used by the figure benches.  Reads the
/// ALLARM_BENCH_ACCESSES environment variable; defaults to `fallback`.
std::uint64_t bench_accesses(std::uint64_t fallback);

}  // namespace allarm::core
