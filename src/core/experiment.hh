// Experiment harness: the one place that knows how to run
// (workload x configuration) pairs and derive the metrics each paper
// figure reports.  Used by every bench binary and by the integration tests.
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "core/system.hh"
#include "workload/spec.hh"

namespace allarm::core {

/// Runs `spec` once on a fresh System with the given directory mode.
RunResult run_single(SystemConfig config, DirectoryMode mode,
                     const workload::WorkloadSpec& spec, std::uint64_t seed,
                     numa::AllocPolicy policy = numa::AllocPolicy::kFirstTouch);

/// Baseline + ALLARM runs of the same workload and seed.
struct PairResult {
  RunResult baseline;
  RunResult allarm;

  /// allarm/baseline ratio of a named statistic (1.0 when undefined).
  double normalized(const std::string& stat) const {
    return allarm.stats.normalized_to(baseline.stats, stat);
  }
  /// Baseline runtime / ALLARM runtime (the paper's speedup).
  double speedup() const {
    return allarm.runtime == 0
               ? 1.0
               : static_cast<double>(baseline.runtime) /
                     static_cast<double>(allarm.runtime);
  }
};

PairResult run_pair(const SystemConfig& config,
                    const workload::WorkloadSpec& spec, std::uint64_t seed);

/// Self-contained description of one simulation run: everything a worker
/// thread needs to execute the run with no shared state.  This is the unit
/// the sweep runner (src/runner/) schedules.
struct RunRequest {
  SystemConfig config;
  DirectoryMode mode = DirectoryMode::kBaseline;
  workload::WorkloadSpec spec;
  std::uint64_t seed = 1;
  numa::AllocPolicy policy = numa::AllocPolicy::kFirstTouch;
  /// When non-empty, the run's executed access stream (plus workload
  /// metadata and setup placements) is captured to this .altr trace file.
  /// Pure side effect: results are unchanged (see docs/TRACES.md).
  std::string capture_trace;
  /// When non-empty, the run replays this .altr trace instead of building
  /// `spec`'s generators, and the results are byte-identical to the
  /// captured run.  The trace's recorded seed/mode/policy must match this
  /// request (enforced; a mismatch would silently label the captured
  /// stream's results with a different identity).  Divergent-scenario
  /// replay goes through trace::make_replay_workload directly.
  std::string replay_trace;
  /// Parallel single-simulation config (src/parallel/).  Default (shards=1)
  /// is the serial kernel; barrier mode at any shard count is byte-identical
  /// to it, so sweep identity (spec_hash) only folds this when lax.
  parallel::ParConfig par;
  /// Records latency histograms into RunResult::profile (RunOptions::
  /// profile).  Observability side channel: never folded into sweep
  /// identity, and the default stats are byte-identical either way.
  bool profile = false;
};

/// Runs `request` on a fresh System.  Thread-safe: concurrent calls never
/// share simulator state.  `deadline_ns` (0 = none) arms the simulator's
/// no-progress watchdog (RunOptions::deadline_ns): a run exceeding the
/// wall-clock budget throws std::runtime_error with a structured
/// diagnostic instead of hanging its caller.  A parameter rather than a
/// RunRequest field so the sweep runner's retry loop re-submits the same
/// request object untouched.
RunResult run_request(const RunRequest& request, std::uint64_t deadline_ns = 0);

/// Number of accesses per thread used by the figure benches.  Reads the
/// ALLARM_BENCH_ACCESSES environment variable; defaults to `fallback`.
std::uint64_t bench_accesses(std::uint64_t fallback);

/// Worker-thread count for sweeps and the ported benches.  Reads the
/// ALLARM_JOBS environment variable; when unset or invalid, returns
/// `fallback`, or std::thread::hardware_concurrency() (at least 1) when
/// `fallback` is 0.
std::uint32_t bench_jobs(std::uint32_t fallback = 0);

}  // namespace allarm::core
