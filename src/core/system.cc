#include "core/system.hh"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "common/flat_map.hh"
#include "common/log.hh"
#include "trace/writer.hh"

namespace allarm::core {

namespace {

/// Number of rng draws separating two generator states: steps `before`
/// forward until it matches `after`.  Capture-only instrumentation — the
/// draw count per access is small (a Mix pick plus a child's one or two
/// draws, with rare Lemire rejections), so the walk is a handful of
/// state comparisons.
std::uint32_t count_draws(Rng probe, const Rng& after) {
  constexpr std::uint32_t kMaxDraws = 65536;
  std::uint32_t draws = 0;
  while (probe != after) {
    probe.next();
    if (++draws > kMaxDraws) {
      throw std::runtime_error(
          "trace capture: generator consumed an implausible number of rng "
          "draws for one access");
    }
  }
  return draws;
}

}  // namespace

using cache::LineState;
using coherence::PfEntry;
using coherence::PfState;

struct System::ThreadRuntime {
  workload::ThreadSpec spec;
  std::unique_ptr<workload::AccessGenerator> generator;
  Rng rng{0};
  std::uint64_t remaining = 0;
  NodeId node = kInvalidNode;  ///< Current placement (mirrors the OS map).
  bool in_warmup = false;
  /// False when think-jitter draws interleave with generation draws — then
  /// pre-generating a batch would reorder the rng stream, so the issue
  /// path falls back to one generator->next() per access.
  bool use_ring = true;
  Tick crossed_warmup_at = 0;  ///< When this thread entered its ROI.
  Tick finished_at = 0;
  /// Sim time of this thread's most recent issue, maintained only while
  /// the no-progress watchdog is armed (feeds the oldest-in-flight-access
  /// line of its diagnostic; the ring path's last_issue_at below is not
  /// equivalent — serial-issue threads never update it).
  Tick watchdog_issue_at = 0;
  /// Sim time of this thread's in-flight issue, maintained only while
  /// RunOptions::profile is armed (one outstanding access per thread, so
  /// a single stamp suffices for the request→completion histogram).
  Tick profile_issued_at = 0;
  System* system = nullptr;  ///< Back-pointer for the completion callback.
  std::uint32_t capture_slot = 0;  ///< Trace-writer slot while capturing.

  // --- Batched issue ring (System::next_access / System::fill_ring) -------
  /// Pre-sized, allocation-free: accesses are generated in bulk via
  /// AccessGenerator::next_batch and issued one by one.
  static constexpr std::uint32_t kRingCapacity = 64;
  std::array<workload::Access, kRingCapacity> ring;
  std::uint32_t ring_pos = 0;    ///< Next slot to issue.
  std::uint32_t ring_count = 0;  ///< Valid slots in the current batch.
  /// First tick at which unissued slots are stale (exclusive horizon from
  /// next_batch); kTickNever when the batch can never go stale.
  Tick ring_valid_until = 0;
  /// True when the previous batch reported kTickNever — the next fill can
  /// take a whole ring without risking replay work.
  bool last_batch_timeless = false;
  Tick last_issue_at = 0;
  /// EWMA of inter-issue simulated time, the horizon-to-batch-size
  /// predictor (starts at ~2 ns; self-corrects within a few accesses).
  Tick avg_issue_gap = 2 * kTicksPerNs;
  Rng fill_rng{0};  ///< Rng snapshot at the last horizon-limited fill.
  /// Generator position snapshot matching fill_rng (reserved at setup so
  /// steady-state fills never allocate).
  std::vector<std::uint64_t> fill_state;

};

System::System(const SystemConfig& config, numa::AllocPolicy policy)
    : config_(config),
      mesh_(config),
      os_(config, policy),
      energy_(config) {
  config_.validate();
  const std::uint32_t n = config_.num_nodes();
  fabric_.config = &config_;
  fabric_.events = &events_;
  fabric_.mesh = &mesh_;
  fabric_.allarm_ranges = &ranges_;
  fabric_.os = &os_;
  for (NodeId i = 0; i < n; ++i) {
    drams_.push_back(std::make_unique<mem::Dram>(config_));
    caches_.push_back(
        std::make_unique<coherence::CacheController>(i, fabric_, 0x1000 + i));
    dirs_.push_back(std::make_unique<coherence::DirectoryController>(
        i, fabric_, config_.directory_mode, 0x2000 + i));
  }
  for (NodeId i = 0; i < n; ++i) {
    fabric_.drams.push_back(drams_[i].get());
    fabric_.caches.push_back(caches_[i].get());
    fabric_.directories.push_back(dirs_[i].get());
  }
}

System::~System() = default;

void System::set_directory_mode(NodeId node, DirectoryMode mode) {
  if (ran_) throw std::logic_error("System: cannot change mode after run()");
  // Directories are immutable once built; rebuild the one node.
  dirs_.at(node) = std::make_unique<coherence::DirectoryController>(
      node, fabric_, mode, 0x2000 + node);
  fabric_.directories.at(node) = dirs_.at(node).get();
}

void System::begin_roi() {
  roi_start_ = events_.now();
  mesh_.reset_stats();
  for (auto& d : drams_) d->reset_stats();
  for (auto& c : caches_) c->reset_stats();
  for (auto& d : dirs_) d->reset_stats();
  // Profile histograms follow the same ROI boundary as the counters.
  prof_access_ns_ = Histogram{};
  prof_dir_occupancy_ = Histogram{};
  prof_mesh_queue_ns_ = Histogram{};
}

void System::issue_next(ThreadRuntime& thread) {
  if (watchdog_on_) {
    thread.watchdog_issue_at = events_.now();
    if (--watchdog_countdown_ == 0) {
      watchdog_countdown_ = kWatchdogStride;
      check_watchdog();
    }
  }
  if (profile_on_) thread.profile_issued_at = events_.now();
  if (thread.in_warmup && thread.remaining <= thread.spec.accesses) {
    // This thread has crossed from warm-up into its region of interest.
    thread.in_warmup = false;
    thread.crossed_warmup_at = events_.now();
    if (--threads_in_warmup_ == 0) begin_roi();
  }
  if (thread.remaining == 0) {
    thread.finished_at = events_.now();
    --threads_running_;
    return;
  }
  const NodeId node = thread.node;
  if (caches_[node]->busy_with_core_request()) {
    // Another thread currently occupies this core (possible after a
    // migration): timeshare by retrying once the pipeline drains.  The
    // retry follows the thread's CURRENT placement so a sharded run keeps
    // issue events on the lane owning the core they occupy.
    events_.schedule_at_for(node, events_.now() + ticks_from_ns(100.0),
                            [this, &thread] { issue_next(thread); });
    return;
  }
  --thread.remaining;
  workload::Access access;
  if (capture_ == nullptr) {
    access = next_access(thread);
  } else {
    // Capture: snapshot the rng around the (serial-path) generation so the
    // record carries the exact draw count replay must burn.
    const Rng before = thread.rng;
    access = next_access(thread);
    capture_->record(thread.capture_slot, access,
                     count_draws(before, thread.rng));
  }
  const Addr paddr = os_.touch(thread.spec.asid, access.vaddr, node);

  ++accesses_done_;
  if (invariant_period_ != 0 && accesses_done_ % invariant_period_ == 0) {
    check_invariants(/*strict=*/false);
  }

  // The callback is a {trampoline, &thread} pair — nothing is constructed
  // or type-erased per access, and `thread` outlives any in-flight request.
  caches_[node]->core_access(
      access.type, paddr,
      coherence::CacheController::DoneFn(&System::access_done_thunk, &thread));
}

void System::access_done_thunk(void* ctx, Tick done) {
  ThreadRuntime& thread = *static_cast<ThreadRuntime*>(ctx);
  System* self = thread.system;
  if (self->profile_on_ && done >= thread.profile_issued_at) {
    self->prof_access_ns_.record((done - thread.profile_issued_at) /
                                 kTicksPerNs);
  }
  Tick think = thread.spec.think;
  if (think != 0 && thread.spec.think_jitter > 0.0) {
    const double jitter =
        1.0 + thread.spec.think_jitter * (2.0 * thread.rng.uniform() - 1.0);
    think = static_cast<Tick>(static_cast<double>(think) * jitter);
  }
  // Target the thread's current node: after a migration the next issue
  // belongs to the destination core's lane (the migration handoff).
  self->events_.schedule_at_for(thread.node, done + think,
                                [self, &thread] { self->issue_next(thread); });
}

workload::Access System::next_access(ThreadRuntime& thread) {
  const Tick now = events_.now();
  if (!thread.use_ring) return thread.generator->next(thread.rng, now);
  const Tick gap = now - thread.last_issue_at;
  thread.last_issue_at = now;
  thread.avg_issue_gap = (3 * thread.avg_issue_gap + gap) / 4;
  if (thread.ring_pos >= thread.ring_count) {
    fill_ring(thread, now, /*replay=*/0);
  } else if (now >= thread.ring_valid_until) {
    // The batch was generated before a time-dependent generator's output
    // shifted: everything not yet issued is stale.  Rewind and regenerate
    // from the issued prefix so the stream stays byte-identical.
    fill_ring(thread, now, /*replay=*/thread.ring_pos);
  }
  return thread.ring[thread.ring_pos++];
}

void System::fill_ring(ThreadRuntime& thread, Tick now, std::uint32_t replay) {
  workload::AccessGenerator* gen = thread.generator.get();
  if (replay > 0) {
    // Replay: restore the fill-time rng and generator position, burn the
    // draws of the `replay` slots already issued (the draw sequence never
    // depends on `now`, so this lands exactly on the state a serial issue
    // path would have here), then fall through to a fresh fill at `now`.
    thread.rng = thread.fill_rng;
    const std::uint64_t* state = thread.fill_state.data();
    gen->restore_state(state);
    gen->next_batch(thread.rng, now,
                    workload::Span<workload::Access>(thread.ring.data(),
                                                     replay));
  }
  // Batch size: a whole ring when nothing in it can go stale, else the
  // predicted number of accesses that fit before the validity horizon
  // (oversizing is still correct — it just buys replay work).
  std::uint32_t count = ThreadRuntime::kRingCapacity;
  const Tick conservative = gen->validity_horizon(now);
  if (conservative != kTickNever) {
    if (!thread.last_batch_timeless) {
      const Tick gap = thread.avg_issue_gap > 0 ? thread.avg_issue_gap : 1;
      const Tick predicted = (conservative - now) / gap;
      if (predicted < count) {
        count = predicted > 0 ? static_cast<std::uint32_t>(predicted) : 1;
      }
    }
    // A finite horizon means this batch may need a replay later: snapshot
    // the rng and the generator position it starts from.
    thread.fill_rng = thread.rng;
    thread.fill_state.clear();
    gen->save_state(thread.fill_state);
  }
  // Never pre-draw past the end of the thread's budget (`remaining` was
  // already decremented for the access being issued now).
  const std::uint64_t left = thread.remaining + 1;
  if (left < count) count = static_cast<std::uint32_t>(left);
  thread.ring_valid_until = gen->next_batch(
      thread.rng, now,
      workload::Span<workload::Access>(thread.ring.data(), count));
  thread.last_batch_timeless = thread.ring_valid_until == kTickNever;
  thread.ring_pos = 0;
  thread.ring_count = count;
}

void System::schedule_migrations(const RunOptions& options) {
  if (options.migration_interval == 0) return;
  migration_interval_ = options.migration_interval;
  // Engine-global events (no owning node) pin to node 0's lane so sharded
  // runs give them a deterministic home.
  events_.schedule_at_for(NodeId{0}, events_.now() + migration_interval_,
                          [this] { migration_tick(); });
}

void System::migration_tick() {
  if (threads_running_ == 0) return;
  // Pick a running thread and move it to a random other node.
  migration_scratch_.clear();
  for (auto& t : threads_) {
    if (t->remaining > 0) migration_scratch_.push_back(t.get());
  }
  if (!migration_scratch_.empty()) {
    ThreadRuntime* victim =
        migration_scratch_[migration_rng_.below(migration_scratch_.size())];
    const NodeId cur = victim->node;
    NodeId dst = static_cast<NodeId>(
        migration_rng_.below(config_.num_nodes()));
    if (dst == cur) dst = static_cast<NodeId>((dst + 1) % config_.num_nodes());
    os_.migrate_thread(victim->spec.id, dst);
    victim->node = dst;
  }
  events_.schedule_at_for(NodeId{0}, events_.now() + migration_interval_,
                          [this] { migration_tick(); });
}

void System::check_watchdog() {
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - watchdog_start_)
                           .count();
  if (static_cast<std::uint64_t>(elapsed) <= watchdog_deadline_ns_) {
    watchdog_last_accesses_ = accesses_done_;
    return;
  }
  // Structured no-progress diagnostic: enough state to tell a genuinely
  // oversized run (accesses still advancing) from a livelocked one
  // (delta 0, one ancient in-flight access) without attaching a debugger.
  std::uint32_t running = 0;
  Tick oldest_issue = kTickNever;
  for (const auto& t : threads_) {
    if (t->remaining == 0) continue;
    ++running;
    oldest_issue = std::min(oldest_issue, t->watchdog_issue_at);
  }
  const Tick now = events_.now();
  std::string diag =
      "no-progress watchdog: wall-clock deadline of " +
      std::to_string(watchdog_deadline_ns_ / 1000000) + " ms exceeded (" +
      std::to_string(static_cast<std::uint64_t>(elapsed) / 1000000) +
      " ms elapsed): sim time " + std::to_string(ns_from_ticks(now)) +
      " ns, " + std::to_string(running) + " of " +
      std::to_string(threads_.size()) + " threads still running (" +
      std::to_string(threads_in_warmup_) + " in warmup), " +
      std::to_string(accesses_done_) + " accesses issued (+" +
      std::to_string(accesses_done_ - watchdog_last_accesses_) +
      " since last check)";
  if (running > 0 && oldest_issue != kTickNever) {
    diag += ", oldest in-flight access issued at sim time " +
            std::to_string(ns_from_ticks(oldest_issue)) + " ns (age " +
            std::to_string(ns_from_ticks(now - oldest_issue)) + " ns)";
  }
  throw std::runtime_error(diag);
}

RunResult System::run(const workload::WorkloadSpec& spec,
                      const RunOptions& options) {
  if (ran_) throw std::logic_error("System: run() may be called once");
  ran_ = true;
  parallel::Partition partition;
  Tick lookahead_ticks = 0;
  if (options.par.enabled()) {
    partition = parallel::make_partition(config_, options.par.shards);
    lookahead_ticks = parallel::lookahead(config_, partition);
    events_.set_sharding(partition.shards, partition.owner);
  }
  invariant_period_ = options.invariant_check_period;
  migration_rng_ = Rng(options.seed ^ 0xabcdef);
  capture_ = options.capture;
  if (options.deadline_ns != 0) {
    watchdog_on_ = true;
    watchdog_deadline_ns_ = options.deadline_ns;
    watchdog_start_ = std::chrono::steady_clock::now();
  }
  if (options.profile) {
    profile_on_ = true;
    mesh_.set_queue_histogram(&prof_mesh_queue_ns_);
    for (auto& d : dirs_) d->set_occupancy_histogram(&prof_dir_occupancy_);
  }

  // Capture observes the setup phase's first-touch placements: replaying
  // those touches, in order, reproduces the page homes (and the
  // interleave policy's allocation counter) exactly.
  std::vector<trace::SetupTouch> setup_touches;
  if (capture_ != nullptr) {
    os_.set_touch_observer(
        [](void* ctx, AddressSpaceId asid, PageNum vpage, NodeId node) {
          static_cast<std::vector<trace::SetupTouch>*>(ctx)->push_back(
              trace::SetupTouch{asid, vpage, node});
        },
        &setup_touches);
  }
  if (spec.setup) spec.setup(os_);
  if (capture_ != nullptr) {
    os_.set_touch_observer(nullptr, nullptr);
    trace::TraceMeta& meta = capture_->meta();
    meta.workload = spec.name;
    meta.seed = options.seed;
    meta.directory_mode = static_cast<std::uint32_t>(config_.directory_mode);
    meta.alloc_policy = static_cast<std::uint32_t>(os_.policy());
    meta.setup = std::move(setup_touches);
  }

  Rng seeder(options.seed);
  for (const workload::ThreadSpec& ts : spec.threads) {
    auto rt = std::make_unique<ThreadRuntime>();
    rt->spec = ts;
    rt->generator = ts.make_generator();
    rt->rng = Rng(seeder.next() ^ (ts.id * 0x9e3779b9ull));
    rt->remaining = ts.warmup_accesses + ts.accesses;
    rt->node = ts.node;
    rt->in_warmup = ts.warmup_accesses > 0;
    // Think-jitter draws interleave with generation draws access by
    // access; pre-generating a batch would reorder them.  Capture also
    // issues serially (stream-identical) so each record's rng-draw count
    // belongs to exactly one access.
    rt->use_ring =
        (ts.think == 0 || ts.think_jitter <= 0.0) && capture_ == nullptr;
    if (capture_ != nullptr) {
      trace::TraceThreadMeta thread_meta;
      thread_meta.id = ts.id;
      thread_meta.asid = ts.asid;
      thread_meta.node = ts.node;
      thread_meta.accesses = ts.accesses;
      thread_meta.warmup_accesses = ts.warmup_accesses;
      thread_meta.think = ts.think;
      thread_meta.think_jitter = ts.think_jitter;
      thread_meta.start_offset = ts.start_offset;
      rt->capture_slot = capture_->add_thread(thread_meta);
    }
    rt->system = this;
    // Pre-size the replay snapshot so steady-state fills never allocate.
    rt->generator->save_state(rt->fill_state);
    rt->fill_state.clear();
    if (rt->in_warmup) ++threads_in_warmup_;
    os_.place_thread(ts.id, ts.node);
    threads_.push_back(std::move(rt));
  }
  threads_running_ = static_cast<std::uint32_t>(threads_.size());

  for (auto& t : threads_) {
    ThreadRuntime* rt = t.get();
    events_.schedule_at_for(rt->spec.node, rt->spec.start_offset,
                            [this, rt] { issue_next(*rt); });
  }
  schedule_migrations(options);

  parallel::ParStats par_stats;
  if (options.par.enabled() && options.par.mode == parallel::ParMode::kLax) {
    par_stats = parallel::run_lax(events_, options.par, lookahead_ticks,
                                  options.par_pool);
  } else {
    events_.run();  // Drains: threads stop issuing, writebacks settle.
    if (options.par.enabled()) {
      par_stats.shards = options.par.shards;
      par_stats.mode = parallel::ParMode::kBarrier;
      par_stats.lookahead = lookahead_ticks;
      par_stats.cross_events = events_.cross_lane_stats().events;
      par_stats.min_cross_delta = events_.cross_lane_stats().min_delta;
    }
  }

  if (!quiescent()) {
    throw std::logic_error("System: event queue drained but not quiescent");
  }
  check_invariants(/*strict=*/true);

  RunResult result;
  for (auto& t : threads_) {
    // Per-thread region-of-interest time: from the moment this thread
    // finished its own warm-up until it completed its accesses.  Using the
    // per-thread origin (rather than one global instant) makes runtimes
    // comparable across configurations even when warm-up durations differ.
    const Tick finish = t->finished_at > t->crossed_warmup_at
                            ? t->finished_at - t->crossed_warmup_at
                            : 0;
    result.thread_finish.push_back(finish);
    result.runtime = std::max(result.runtime, finish);
  }
  result.stats = collect_stats(result.runtime);
  result.par = par_stats;
  if (profile_on_) {
    result.profile["access_latency_ns"] = prof_access_ns_;
    result.profile["dir_occupancy"] = prof_dir_occupancy_;
    result.profile["mesh_queue_ns"] = prof_mesh_queue_ns_;
  }
  return result;
}

bool System::quiescent() const {
  for (const auto& c : caches_) {
    if (c->request_outstanding() || c->writebacks_in_flight() != 0) return false;
  }
  for (const auto& d : dirs_) {
    if (!d->quiescent()) return false;
  }
  return true;
}

void System::check_invariants(bool strict) const {
  // Gather every cached (line, node, state) triple into one flat vector and
  // sort-group it by line: no per-line container allocations even when the
  // periodic checker runs inside the measured region.
  struct Holder {
    LineAddr line;
    NodeId node;
    LineState state;
  };
  std::vector<Holder> held;
  for (NodeId n = 0; n < config_.num_nodes(); ++n) {
    caches_[n]->hierarchy().for_each([&held, n](LineAddr line, LineState s) {
      held.push_back(Holder{line, n, s});
    });
  }
  // Stable: holders of one line keep their node-major discovery order (the
  // per-line duplicate check below relies on equal nodes being adjacent).
  std::stable_sort(held.begin(), held.end(),
                   [](const Holder& a, const Holder& b) {
                     return a.line < b.line;
                   });

  auto fail = [](const std::string& what, LineAddr line) {
    throw std::logic_error("invariant violation: " + what + " (line " +
                           std::to_string(line) + ")");
  };

  // Group index for the strict phase: line -> [begin, end) in `held`.
  // Only populated under strict -- the periodic (non-strict) checker runs
  // inside the measured region and must stay allocation-light.
  FlatMap<LineAddr, std::pair<std::uint32_t, std::uint32_t>> groups;
  if (strict) groups.reserve(held.size());

  for (std::size_t begin = 0; begin < held.size();) {
    const LineAddr line = held[begin].line;
    std::size_t end = begin;
    while (end < held.size() && held[end].line == line) ++end;
    if (strict) {
      groups.try_emplace(line, static_cast<std::uint32_t>(begin),
                         static_cast<std::uint32_t>(end));
    }

    int m = 0, e = 0, o = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const Holder& h = held[i];
      if (i > begin && held[i - 1].node == h.node) {
        fail("line duplicated within a node", line);
      }
      if (h.state == LineState::kModified) ++m;
      if (h.state == LineState::kExclusive) ++e;
      if (h.state == LineState::kOwned) ++o;
    }
    if (m + e > 0 && end - begin != 1) {
      fail("M/E copy coexists with another copy", line);
    }
    if (o > 1) fail("multiple Owned copies", line);

    // Directory coverage.
    const NodeId home = os_.home_of(addr_of_line(line));
    if (!dirs_[home]->line_busy(line)) {  // Otherwise mid-transaction.
      const PfEntry* entry = dirs_[home]->probe_filter().peek(line);
      if (entry == nullptr) {
        const bool allarm = dirs_[home]->mode() == DirectoryMode::kAllarm &&
                            ranges_.active(addr_of_line(line));
        if (allarm) {
          for (std::size_t i = begin; i < end; ++i) {
            if (held[i].node != home) {
              fail("remote cached line untracked under ALLARM", line);
            }
          }
        } else if (dirs_[home]->mode() == DirectoryMode::kRegion) {
          // Region entries cover exactly the owner's exclusive/modified
          // copies; anything else must carry a per-block entry.
          for (std::size_t i = begin; i < end; ++i) {
            if (!dirs_[home]->region_covers(line, held[i].node)) {
              fail("cached line not covered by a region entry", line);
            }
            if (held[i].state != LineState::kModified &&
                held[i].state != LineState::kExclusive) {
              fail("region-covered line held non-exclusive", line);
            }
          }
        } else {
          fail("cached line untracked under baseline", line);
        }
      }
    }
    begin = end;
  }

  if (!strict) return;

  // Entry/cache agreement (quiescent only).
  for (NodeId h = 0; h < config_.num_nodes(); ++h) {
    dirs_[h]->probe_filter().for_each([&](const PfEntry& entry) {
      if (dirs_[h]->line_busy(entry.line)) return;
      const auto* range = groups.find(entry.line);
      const std::uint32_t begin = range ? range->first : 0;
      const std::uint32_t end = range ? range->second : 0;
      const std::uint32_t count = end - begin;
      switch (entry.state) {
        case PfState::kEM: {
          if (count != 1 || held[begin].node != entry.owner ||
              (held[begin].state != LineState::kModified &&
               held[begin].state != LineState::kExclusive)) {
            fail("EM entry does not match a sole M/E holder", entry.line);
          }
          break;
        }
        case PfState::kOwned: {
          bool owner_ok = false;
          for (std::uint32_t i = begin; i < end; ++i) {
            const Holder& hh = held[i];
            if (hh.node == entry.owner) {
              owner_ok = hh.state == LineState::kOwned;
            } else if (hh.state != LineState::kShared) {
              fail("non-owner holds non-Shared under Owned entry", entry.line);
            }
          }
          if (!owner_ok) fail("Owned entry without an Owned holder", entry.line);
          break;
        }
        case PfState::kShared: {
          for (std::uint32_t i = begin; i < end; ++i) {
            if (held[i].state != LineState::kShared) {
              fail("non-Shared holder under Shared entry", entry.line);
            }
          }
          break;  // Stale (holderless) Shared entries are legal in Hammer.
        }
        case PfState::kInvalid:
          fail("invalid entry enumerated", entry.line);
      }
    });
  }

  // Region mode: at quiescence every presence bit corresponds to exactly
  // one cached line covered by its region entry.  The region table is a
  // FlatMap (never iterated), so the check compares live counters: a
  // stale-high bit (a grant whose death was lost) breaks the equality
  // because covered cached lines always have their bit set.
  {
    std::uint64_t bits = 0;
    for (const auto& d : dirs_) {
      bits += d->region_directory().presence_bits();
    }
    std::uint64_t covered = 0;
    for (const Holder& h : held) {
      const NodeId home = os_.home_of(addr_of_line(h.line));
      if (dirs_[home]->probe_filter().peek(h.line) == nullptr &&
          dirs_[home]->region_covers(h.line, h.node)) {
        ++covered;
      }
    }
    if (bits != covered) {
      throw std::logic_error(
          "invariant violation: region presence bits (" +
          std::to_string(bits) + ") disagree with covered cached lines (" +
          std::to_string(covered) + ")");
    }
  }
}

StatSet System::collect_stats(Tick runtime) const {
  StatSet s;
  s.set("runtime_ns", ns_from_ticks(runtime));

  const noc::NocStats& nw = mesh_.stats();
  s.set("noc.bytes", static_cast<double>(nw.bytes));
  s.set("noc.messages", static_cast<double>(nw.messages));
  s.set("noc.control_messages", static_cast<double>(nw.control_messages));
  s.set("noc.data_messages", static_cast<double>(nw.data_messages));
  s.set("noc.flit_hops", static_cast<double>(nw.flit_hops));
  s.set("noc.local_messages", static_cast<double>(nw.local_messages));
  for (std::size_t c = 0; c < noc::kNumTrafficCauses; ++c) {
    s.set("noc.bytes." + to_string(static_cast<noc::TrafficCause>(c)),
          static_cast<double>(nw.bytes_by_cause[c]));
  }

  coherence::DirectoryStats dir{};
  coherence::ProbeFilterStats pf{};
  region::RegionStats rg{};
  std::uint64_t pf_occupancy = 0;
  std::uint64_t region_entries = 0, region_presence = 0;
  std::uint64_t region_private = 0, region_shared = 0;
  for (const auto& d : dirs_) {
    const auto& ds = d->stats();
    dir.requests += ds.requests;
    dir.local_requests += ds.local_requests;
    dir.remote_requests += ds.remote_requests;
    dir.queued_ops += ds.queued_ops;
    dir.pf_evictions += ds.pf_evictions;
    dir.eviction_messages += ds.eviction_messages;
    dir.eviction_lines_invalidated += ds.eviction_lines_invalidated;
    dir.eviction_dirty_writebacks += ds.eviction_dirty_writebacks;
    dir.local_no_alloc += ds.local_no_alloc;
    dir.remote_miss_probes += ds.remote_miss_probes;
    dir.remote_miss_probe_hidden += ds.remote_miss_probe_hidden;
    dir.remote_miss_probe_hit += ds.remote_miss_probe_hit;
    dir.puts_local_untracked += ds.puts_local_untracked;
    dir.puts_stale += ds.puts_stale;
    dir.puts_owner += ds.puts_owner;
    dir.anomalies += ds.anomalies;
    dir.victim_stalls += ds.victim_stalls;
    const auto& ps = d->probe_filter().stats();
    pf.reads += ps.reads;
    pf.writes += ps.writes;
    pf.hits += ps.hits;
    pf.misses += ps.misses;
    pf.inserts += ps.inserts;
    pf_occupancy += d->probe_filter().occupancy();
    const region::RegionDirectory& rd = d->region_directory();
    const region::RegionStats& rds = rd.stats();
    rg.reads += rds.reads;
    rg.writes += rds.writes;
    rg.hits += rds.hits;
    rg.installs += rds.installs;
    rg.collapses += rds.collapses;
    rg.collapse_block_installs += rds.collapse_block_installs;
    rg.collapse_spills += rds.collapse_spills;
    rg.recollects += rds.recollects;
    rg.puts += rds.puts;
    region_entries += rd.entries();
    region_presence += rd.presence_bits();
    region_private += rd.private_regions();
    region_shared += rd.shared_regions();
  }
  s.set("dir.requests", static_cast<double>(dir.requests));
  s.set("dir.local_requests", static_cast<double>(dir.local_requests));
  s.set("dir.remote_requests", static_cast<double>(dir.remote_requests));
  s.set("dir.local_fraction",
        dir.requests ? static_cast<double>(dir.local_requests) / dir.requests
                     : 0.0);
  s.set("dir.queued_ops", static_cast<double>(dir.queued_ops));
  s.set("dir.pf_evictions", static_cast<double>(dir.pf_evictions));
  s.set("dir.eviction_messages", static_cast<double>(dir.eviction_messages));
  s.set("dir.msgs_per_eviction",
        dir.pf_evictions ? static_cast<double>(dir.eviction_messages) /
                               dir.pf_evictions
                         : 0.0);
  s.set("dir.eviction_lines_invalidated",
        static_cast<double>(dir.eviction_lines_invalidated));
  s.set("dir.eviction_dirty_writebacks",
        static_cast<double>(dir.eviction_dirty_writebacks));
  s.set("dir.local_no_alloc", static_cast<double>(dir.local_no_alloc));
  s.set("dir.remote_miss_probes", static_cast<double>(dir.remote_miss_probes));
  s.set("dir.remote_miss_probe_hidden",
        static_cast<double>(dir.remote_miss_probe_hidden));
  s.set("dir.remote_miss_probe_hit",
        static_cast<double>(dir.remote_miss_probe_hit));
  s.set("dir.probe_hidden_fraction",
        dir.remote_miss_probes
            ? static_cast<double>(dir.remote_miss_probe_hidden) /
                  dir.remote_miss_probes
            : 0.0);
  s.set("dir.victim_stalls", static_cast<double>(dir.victim_stalls));
  s.set("dir.anomalies", static_cast<double>(dir.anomalies));
  s.set("pf.reads", static_cast<double>(pf.reads));
  s.set("pf.writes", static_cast<double>(pf.writes));
  s.set("pf.hits", static_cast<double>(pf.hits));
  s.set("pf.misses", static_cast<double>(pf.misses));
  s.set("pf.inserts", static_cast<double>(pf.inserts));
  s.set("pf.final_occupancy", static_cast<double>(pf_occupancy));
  {
    std::uint64_t em = 0, owned = 0, shared = 0;
    for (const auto& d : dirs_) {
      d->probe_filter().for_each([&](const PfEntry& e) {
        if (e.state == PfState::kEM) ++em;
        else if (e.state == PfState::kOwned) ++owned;
        else ++shared;
      });
    }
    s.set("pf.entries_em", static_cast<double>(em));
    s.set("pf.entries_owned", static_cast<double>(owned));
    s.set("pf.entries_shared", static_cast<double>(shared));
  }

  // Region-granularity counters (src/region/): all zero outside region
  // mode, exported unconditionally so every mode's report carries the same
  // key set.
  s.set("region.reads", static_cast<double>(rg.reads));
  s.set("region.writes", static_cast<double>(rg.writes));
  s.set("region.hits", static_cast<double>(rg.hits));
  s.set("region.installs", static_cast<double>(rg.installs));
  s.set("region.collapses", static_cast<double>(rg.collapses));
  s.set("region.collapse_block_installs",
        static_cast<double>(rg.collapse_block_installs));
  s.set("region.collapse_spills", static_cast<double>(rg.collapse_spills));
  s.set("region.recollects", static_cast<double>(rg.recollects));
  s.set("region.puts", static_cast<double>(rg.puts));
  s.set("region.entries", static_cast<double>(region_entries));
  s.set("region.presence_bits", static_cast<double>(region_presence));
  s.set("region.private_regions", static_cast<double>(region_private));
  s.set("region.shared_regions", static_cast<double>(region_shared));

  coherence::CacheControllerStats cc{};
  for (const auto& c : caches_) {
    const auto& cs = c->stats();
    cc.loads += cs.loads;
    cc.stores += cs.stores;
    cc.ifetches += cs.ifetches;
    cc.l1_hits += cs.l1_hits;
    cc.l2_hits += cs.l2_hits;
    cc.misses += cs.misses;
    cc.upgrades += cs.upgrades;
    cc.puts_dirty += cs.puts_dirty;
    cc.puts_clean += cs.puts_clean;
    cc.silent_drops += cs.silent_drops;
    cc.probes_seen += cs.probes_seen;
    cc.probe_hits += cs.probe_hits;
    cc.wbb_stalls += cs.wbb_stalls;
    cc.upgrade_without_line += cs.upgrade_without_line;
    cc.wbb_collisions += cs.wbb_collisions;
    cc.total_miss_latency += cs.total_miss_latency;
    cc.wbb_peak = std::max(cc.wbb_peak, cs.wbb_peak);
  }
  s.set("cache.loads", static_cast<double>(cc.loads));
  s.set("cache.stores", static_cast<double>(cc.stores));
  s.set("cache.ifetches", static_cast<double>(cc.ifetches));
  s.set("cache.l1_hits", static_cast<double>(cc.l1_hits));
  s.set("cache.l2_hits", static_cast<double>(cc.l2_hits));
  s.set("cache.misses", static_cast<double>(cc.misses));
  s.set("cache.upgrades", static_cast<double>(cc.upgrades));
  s.set("cache.miss_latency_avg_ns",
        cc.misses ? ns_from_ticks(cc.total_miss_latency) / cc.misses : 0.0);
  s.set("cache.puts_dirty", static_cast<double>(cc.puts_dirty));
  s.set("cache.puts_clean", static_cast<double>(cc.puts_clean));
  s.set("cache.silent_drops", static_cast<double>(cc.silent_drops));
  s.set("cache.probes_seen", static_cast<double>(cc.probes_seen));
  s.set("cache.probe_hits", static_cast<double>(cc.probe_hits));
  s.set("cache.wbb_stalls", static_cast<double>(cc.wbb_stalls));
  s.set("cache.wbb_peak", static_cast<double>(cc.wbb_peak));

  std::uint64_t dram_reads = 0, dram_writes = 0;
  Tick dram_wait = 0;
  for (const auto& d : drams_) {
    dram_reads += d->stats().reads;
    dram_writes += d->stats().writes;
    dram_wait += d->stats().total_queue_wait;
  }
  s.set("dram.reads", static_cast<double>(dram_reads));
  s.set("dram.writes", static_cast<double>(dram_writes));
  s.set("dram.queue_wait_ns", ns_from_ticks(dram_wait));

  const numa::OsStats& os = os_.stats();
  s.set("os.pages_mapped", static_cast<double>(os.pages_mapped));
  s.set("os.local_allocations", static_cast<double>(os.local_allocations));
  s.set("os.spilled_allocations", static_cast<double>(os.spilled_allocations));
  s.set("os.migrations", static_cast<double>(os.migrations));

  s.set("energy.noc_nj", energy_.noc_energy_nj(nw));
  s.set("energy.pf_nj",
        energy_.pf_energy_nj(pf.reads, pf.writes, dir.pf_evictions));
  s.set("energy.region_nj",
        energy_.region_energy_nj(rg.reads, rg.writes, rg.collapses));
  s.set("energy.dram_nj", energy_.dram_energy_nj(dram_reads + dram_writes));

  s.set("sanity.anomalies", static_cast<double>(dir.anomalies));
  s.set("sanity.upgrade_without_line",
        static_cast<double>(cc.upgrade_without_line));
  s.set("sanity.wbb_collisions", static_cast<double>(cc.wbb_collisions));
  s.set("sanity.puts_stale", static_cast<double>(dir.puts_stale));
  s.set("sanity.puts_owner", static_cast<double>(dir.puts_owner));
  s.set("sanity.puts_local_untracked",
        static_cast<double>(dir.puts_local_untracked));
  s.set("sim.events", static_cast<double>(events_.events_executed()));
  return s;
}

}  // namespace allarm::core
