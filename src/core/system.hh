// Top-level simulated system: assembles the Table I machine (16 nodes, each
// with a core, an L1I/L1D/exclusive-L2 hierarchy, a directory with probe
// filter, and a DRAM channel, on a 4x4 mesh) and runs workloads on it.
//
// One System instance runs one workload once; experiments construct a fresh
// System per (workload, configuration) pair so runs are fully independent
// and reproducible.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coherence/cache_controller.hh"
#include "coherence/directory.hh"
#include "coherence/fabric.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "energy/model.hh"
#include "mem/dram.hh"
#include "noc/mesh.hh"
#include "numa/os.hh"
#include "parallel/engine.hh"
#include "sim/event_queue.hh"
#include "workload/spec.hh"

namespace allarm::trace {
class TraceWriter;  // trace/writer.hh
}

namespace allarm::core {

/// Optional run-time knobs.
struct RunOptions {
  std::uint64_t seed = 1;
  /// When nonzero, one thread is migrated to a random other core every
  /// interval (the ablation for Section II-E's migration discussion).
  Tick migration_interval = 0;
  /// Invariant-checking period in executed accesses (0 = only at the end).
  std::uint64_t invariant_check_period = 0;
  /// Wall-clock budget for the whole run, in host nanoseconds (0 = none).
  /// A run exceeding it throws std::runtime_error with a structured
  /// no-progress diagnostic (sim time, access counts, per-thread state)
  /// instead of hanging its caller.  Enforced cooperatively from the issue
  /// path (one countdown decrement per access when armed, a steady_clock
  /// read every 64th); never schedules events, so `sim.events` and all
  /// results are byte-identical with or without a (met) deadline.
  std::uint64_t deadline_ns = 0;
  /// When set, the run's full context is captured into this trace writer:
  /// the workload's thread metadata, the setup phase's first-touch page
  /// placements, and every executed access with the rng-draw count its
  /// generator consumed — everything trace replay needs to reproduce the
  /// run byte-identically.  The caller finishes the writer after run().
  /// Capture forces the serial issue path (stream-identical to the ring by
  /// the next_batch contract) so draw counts attribute to single accesses.
  trace::TraceWriter* capture = nullptr;
  /// Parallel single-simulation config (src/parallel/, docs/PARALLEL.md).
  /// shards <= 1 runs the plain serial kernel; barrier mode is
  /// byte-identical to it at any shard count, lax mode is approximate.
  parallel::ParConfig par;
  /// Optional pool for the lax engine's concurrent mailbox flushes.  Must
  /// NOT be a pool this run itself executes on (the flush blocks in
  /// wait_idle); sweep jobs therefore leave it null.
  runner::ThreadPool* par_pool = nullptr;
  /// When true, the run records latency histograms (per-access
  /// request→completion latency, directory occupancy at request arrival,
  /// mesh queueing delay) into RunResult::profile.  Like the watchdog,
  /// the disabled path costs one predicted branch per access, and the
  /// enabled path never schedules events — `sim.events` and every default
  /// stat are byte-identical either way (docs/OBSERVABILITY.md).
  bool profile = false;
};

/// Results of one run.
struct RunResult {
  Tick runtime = 0;                 ///< Max thread completion time (ROI).
  std::vector<Tick> thread_finish;  ///< Per-thread completion times.
  StatSet stats;                    ///< Flat metric map (see system.cc).
  /// Host wall-clock cost of producing this result, in nanoseconds
  /// (measured by core::run_request; 0 when never measured).  Execution
  /// metadata, not science: reports exclude it unless explicitly asked
  /// (JsonStreamSink timing mode), but the sweep journal records it so a
  /// shard scheduler can size shards by measured cell cost.
  std::uint64_t wall_ns = 0;
  /// Parallel-engine observability for sharded runs (defaulted for serial
  /// runs).  Lives OUTSIDE `stats` deliberately: barrier-mode reports must
  /// stay byte-identical to serial ones, so sharding must not perturb the
  /// serialized key set or values (same contract as wall_ns).
  parallel::ParStats par;
  /// Latency histograms recorded under RunOptions::profile, keyed by
  /// metric name ("access_latency_ns", "dir_occupancy", "mesh_queue_ns").
  /// Another wall_ns-style side channel: empty (and unserialized) unless
  /// profiling was requested, so default reports and journals are
  /// untouched.  Folded into sweep cells by Histogram::merge.
  std::map<std::string, Histogram> profile;
};

/// The assembled machine.
class System {
 public:
  System(const SystemConfig& config,
         numa::AllocPolicy policy = numa::AllocPolicy::kFirstTouch);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Runs `spec` to completion and returns aggregated metrics.
  RunResult run(const workload::WorkloadSpec& spec, const RunOptions& options);

  /// Overrides the directory mode of a single node (per-directory ALLARM
  /// enablement, Section II-C).  Must be called before run().
  void set_directory_mode(NodeId node, DirectoryMode mode);

  /// ALLARM enable ranges; empty means "everywhere".
  numa::RangeRegisters& allarm_ranges() { return ranges_; }

  /// Verifies protocol invariants; throws std::logic_error on violation.
  /// `strict` additionally checks directory-entry/cache agreement and is
  /// only valid when the system is quiescent.
  void check_invariants(bool strict) const;

  /// True when no request, transaction or writeback is in flight.
  bool quiescent() const;

  // --- Component access (tests, examples) -----------------------------------
  const SystemConfig& config() const { return config_; }
  numa::Os& os() { return os_; }
  sim::EventQueue& events() { return events_; }
  noc::Mesh& mesh() { return mesh_; }
  coherence::CacheController& cache(NodeId n) { return *caches_.at(n); }
  coherence::DirectoryController& directory(NodeId n) { return *dirs_.at(n); }
  mem::Dram& dram(NodeId n) { return *drams_.at(n); }

 private:
  struct ThreadRuntime;

  void issue_next(ThreadRuntime& thread);
  /// Completion trampoline for CacheController::DoneFn: `ctx` is the
  /// issuing ThreadRuntime (which carries its System back-pointer).
  static void access_done_thunk(void* ctx, Tick done);
  /// Pops one access from the thread's pre-generated ring (refilling /
  /// regenerating as needed); byte-identical to generator->next() per
  /// access but amortizes the virtual dispatch over whole batches.
  workload::Access next_access(ThreadRuntime& thread);
  /// (Re)fills the ring at simulated time `now`.  `replay` > 0 rewinds the
  /// rng and generator to the previous fill's snapshot and burns that many
  /// accesses first — the already-issued prefix of a batch whose
  /// time-dependent tail went stale.
  void fill_ring(ThreadRuntime& thread, Tick now, std::uint32_t replay);
  void schedule_migrations(const RunOptions& options);
  /// One periodic migration step; reschedules itself while threads run.
  void migration_tick();
  /// Slow path of the RunOptions::deadline_ns watchdog: reads the host
  /// clock and, past the deadline, throws the structured no-progress
  /// diagnostic.  Called every 64th issued access while armed.
  void check_watchdog();
  StatSet collect_stats(Tick runtime) const;

  SystemConfig config_;
  sim::EventQueue events_;
  noc::Mesh mesh_;
  numa::Os os_;
  numa::RangeRegisters ranges_;
  coherence::Fabric fabric_;
  std::vector<std::unique_ptr<mem::Dram>> drams_;
  std::vector<std::unique_ptr<coherence::CacheController>> caches_;
  std::vector<std::unique_ptr<coherence::DirectoryController>> dirs_;
  energy::EnergyModel energy_;

  std::vector<std::unique_ptr<ThreadRuntime>> threads_;
  trace::TraceWriter* capture_ = nullptr;  ///< Non-null while capturing.
  Tick migration_interval_ = 0;
  /// Scratch for migration_tick's running-thread census (reused across
  /// ticks instead of reallocating a vector per migration interval).
  std::vector<ThreadRuntime*> migration_scratch_;
  std::uint32_t threads_running_ = 0;
  std::uint32_t threads_in_warmup_ = 0;
  Tick roi_start_ = 0;
  std::uint64_t accesses_done_ = 0;
  std::uint64_t invariant_period_ = 0;
  Rng migration_rng_{0};
  bool ran_ = false;

  // --- No-progress watchdog (RunOptions::deadline_ns) ---------------------
  /// Issued accesses between steady_clock reads while the watchdog is
  /// armed; unarmed runs pay one predicted branch per access.
  static constexpr std::uint32_t kWatchdogStride = 64;
  bool watchdog_on_ = false;
  std::uint32_t watchdog_countdown_ = kWatchdogStride;
  std::uint64_t watchdog_deadline_ns_ = 0;
  std::chrono::steady_clock::time_point watchdog_start_{};
  std::uint64_t watchdog_last_accesses_ = 0;  ///< For the progress delta.

  // --- Latency profiling (RunOptions::profile) ----------------------------
  /// Armed by run(); gates the per-access issue stamp the same way
  /// watchdog_on_ gates its own.  The component histograms are fed through
  /// raw pointers installed before the run (mesh queueing, directory
  /// occupancy) and recorded from event execution, which stays on the
  /// calling thread even under PDES (lanes run serially; only mailbox
  /// flushes parallelize) — no locking needed.
  bool profile_on_ = false;
  Histogram prof_access_ns_;     ///< Request→completion latency per access.
  Histogram prof_dir_occupancy_; ///< Busy-line count at request arrival.
  Histogram prof_mesh_queue_ns_; ///< Per-message link queueing delay.

  void begin_roi();
};

}  // namespace allarm::core
